"""Unit tests for the feed-forward layers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import ELU, Flatten, Layer, Linear, ReLU, Tanh


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(7)


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(5, 3, rng)
        x = rng.normal(size=(4, 5))
        assert layer.forward(x).shape == (4, 3)

    def test_forward_matches_matmul(self, rng):
        layer = Linear(4, 2, rng)
        x = rng.normal(size=(3, 4))
        expected = x @ layer.weight + layer.bias
        np.testing.assert_allclose(layer.forward(x), expected)

    def test_rejects_wrong_input_width(self, rng):
        layer = Linear(4, 2, rng)
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(3, 5)))

    def test_rejects_non_2d_input(self, rng):
        layer = Linear(4, 2, rng)
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(3, 4, 1)))

    def test_num_parameters(self, rng):
        layer = Linear(5, 3, rng)
        assert layer.num_parameters == 5 * 3 + 3

    def test_backward_requires_forward(self, rng):
        layer = Linear(4, 2, rng)
        with pytest.raises(RuntimeError):
            layer.backward(rng.normal(size=(3, 2)))

    def test_backward_input_gradient_shape(self, rng):
        layer = Linear(4, 2, rng)
        x = rng.normal(size=(3, 4))
        layer.forward(x)
        grad_input = layer.backward(rng.normal(size=(3, 2)))
        assert grad_input.shape == (3, 4)

    def test_backward_populates_per_example_grads(self, rng):
        layer = Linear(4, 2, rng)
        x = rng.normal(size=(3, 4))
        layer.forward(x)
        layer.backward(rng.normal(size=(3, 2)))
        assert layer.per_example_grads is not None
        grad_weight, grad_bias = layer.per_example_grads
        assert grad_weight.shape == (3, 4, 2)
        assert grad_bias.shape == (3, 2)

    def test_per_example_weight_gradient_is_outer_product(self, rng):
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(2, 3))
        layer.forward(x)
        grad_out = rng.normal(size=(2, 2))
        layer.backward(grad_out)
        grad_weight, _ = layer.per_example_grads
        for i in range(2):
            np.testing.assert_allclose(grad_weight[i], np.outer(x[i], grad_out[i]))

    def test_input_gradient_value(self, rng):
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(2, 3))
        layer.forward(x)
        grad_out = rng.normal(size=(2, 2))
        grad_in = layer.backward(grad_out)
        np.testing.assert_allclose(grad_in, grad_out @ layer.weight.T)

    def test_set_parameters_roundtrip(self, rng):
        layer = Linear(3, 2, rng)
        new_weight = rng.normal(size=(3, 2))
        new_bias = rng.normal(size=(2,))
        layer.set_parameters([new_weight, new_bias])
        np.testing.assert_allclose(layer.weight, new_weight)
        np.testing.assert_allclose(layer.bias, new_bias)

    def test_set_parameters_shape_mismatch(self, rng):
        layer = Linear(3, 2, rng)
        with pytest.raises(ValueError):
            layer.set_parameters([np.zeros((2, 3)), np.zeros(2)])

    def test_set_parameters_wrong_count(self, rng):
        layer = Linear(3, 2, rng)
        with pytest.raises(ValueError):
            layer.set_parameters([np.zeros((3, 2))])


class TestActivations:
    @pytest.mark.parametrize("activation_cls", [ReLU, ELU, Tanh])
    def test_no_parameters(self, activation_cls):
        assert activation_cls().num_parameters == 0

    @pytest.mark.parametrize("activation_cls", [ReLU, ELU, Tanh])
    def test_preserves_shape(self, activation_cls, rng):
        layer = activation_cls()
        x = rng.normal(size=(5, 7))
        assert layer.forward(x).shape == x.shape

    @pytest.mark.parametrize("activation_cls", [ReLU, ELU, Tanh])
    def test_backward_requires_forward(self, activation_cls, rng):
        with pytest.raises(RuntimeError):
            activation_cls().backward(rng.normal(size=(2, 2)))

    def test_relu_clamps_negative(self, rng):
        layer = ReLU()
        x = np.array([[-1.0, 0.0, 2.0]])
        np.testing.assert_allclose(layer.forward(x), [[0.0, 0.0, 2.0]])

    def test_relu_gradient_mask(self):
        layer = ReLU()
        x = np.array([[-1.0, 0.5, 2.0]])
        layer.forward(x)
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_allclose(grad, [[0.0, 1.0, 1.0]])

    def test_elu_positive_is_identity(self):
        layer = ELU()
        x = np.array([[0.5, 2.0]])
        np.testing.assert_allclose(layer.forward(x), x)

    def test_elu_negative_saturates_at_minus_alpha(self):
        layer = ELU(alpha=1.5)
        out = layer.forward(np.array([[-50.0]]))
        assert out[0, 0] == pytest.approx(-1.5, abs=1e-6)

    def test_elu_rejects_nonpositive_alpha(self):
        with pytest.raises(ValueError):
            ELU(alpha=0.0)

    def test_elu_gradient_continuous_at_zero(self):
        layer = ELU()
        x = np.array([[1e-9, -1e-9]])
        layer.forward(x)
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_allclose(grad, [[1.0, 1.0]], atol=1e-6)

    def test_tanh_output_range(self, rng):
        layer = Tanh()
        out = layer.forward(rng.normal(scale=10.0, size=(10, 10)))
        assert np.all(out <= 1.0) and np.all(out >= -1.0)

    def test_tanh_gradient_value(self):
        layer = Tanh()
        x = np.array([[0.3]])
        out = layer.forward(x)
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_allclose(grad, 1.0 - out**2)

    @pytest.mark.parametrize("activation_cls", [ReLU, ELU, Tanh])
    def test_numerical_gradient(self, activation_cls, rng):
        """Finite-difference check of each activation's derivative."""
        layer = activation_cls()
        x = rng.normal(size=(3, 4))
        step = 1e-6
        layer.forward(x)
        analytic = layer.backward(np.ones_like(x))
        numeric = (layer.forward(x + step) - layer.forward(x - step)) / (2.0 * step)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)


class TestFlatten:
    def test_flattens_trailing_dims(self, rng):
        layer = Flatten()
        x = rng.normal(size=(4, 3, 2))
        assert layer.forward(x).shape == (4, 6)

    def test_backward_restores_shape(self, rng):
        layer = Flatten()
        x = rng.normal(size=(4, 3, 2))
        out = layer.forward(x)
        assert layer.backward(out).shape == x.shape

    def test_backward_requires_forward(self, rng):
        with pytest.raises(RuntimeError):
            Flatten().backward(rng.normal(size=(2, 2)))

    def test_roundtrip_preserves_values(self, rng):
        layer = Flatten()
        x = rng.normal(size=(2, 3, 5))
        np.testing.assert_allclose(layer.backward(layer.forward(x)), x)


class TestLayerBase:
    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Layer().forward(np.zeros((1, 1)))

    def test_backward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Layer().backward(np.zeros((1, 1)))

    def test_base_layer_has_no_parameters(self):
        assert Layer().num_parameters == 0

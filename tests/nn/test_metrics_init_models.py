"""Unit tests for metrics, initialisers and the model registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.init import glorot_uniform, he_normal, zeros
from repro.nn.metrics import accuracy, confusion_matrix
from repro.nn.models import available_models, build_model, model_for_dataset
from repro.nn.network import Sequential


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(21)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy(np.array([0, 1, 2]), np.array([0, 1, 2])) == 1.0

    def test_none_correct(self):
        assert accuracy(np.array([1, 2, 0]), np.array([0, 1, 2])) == 0.0

    def test_partial(self):
        assert accuracy(np.array([0, 1, 0, 1]), np.array([0, 1, 1, 0])) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.array([0, 1]), np.array([0, 1, 2]))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))


class TestConfusionMatrix:
    def test_diagonal_for_perfect_predictions(self):
        labels = np.array([0, 1, 2, 2])
        matrix = confusion_matrix(labels, labels, num_classes=3)
        np.testing.assert_array_equal(matrix, np.diag([1, 1, 2]))

    def test_off_diagonal_counts(self):
        predictions = np.array([1, 1, 0])
        labels = np.array([0, 1, 0])
        matrix = confusion_matrix(predictions, labels, num_classes=2)
        assert matrix[0, 1] == 1  # one class-0 example predicted as 1
        assert matrix[0, 0] == 1
        assert matrix[1, 1] == 1

    def test_total_count_preserved(self, rng):
        predictions = rng.integers(0, 4, size=50)
        labels = rng.integers(0, 4, size=50)
        matrix = confusion_matrix(predictions, labels, num_classes=4)
        assert matrix.sum() == 50

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0]), np.array([0, 1]), num_classes=2)


class TestInitialisers:
    def test_glorot_shape(self, rng):
        assert glorot_uniform(rng, 10, 5).shape == (10, 5)

    def test_glorot_within_limit(self, rng):
        fan_in, fan_out = 30, 20
        limit = np.sqrt(6.0 / (fan_in + fan_out))
        weights = glorot_uniform(rng, fan_in, fan_out)
        assert np.all(np.abs(weights) <= limit)

    def test_glorot_rejects_nonpositive_fans(self, rng):
        with pytest.raises(ValueError):
            glorot_uniform(rng, 0, 5)

    def test_he_shape_and_scale(self, rng):
        weights = he_normal(rng, 1000, 50)
        assert weights.shape == (1000, 50)
        assert weights.std() == pytest.approx(np.sqrt(2.0 / 1000), rel=0.1)

    def test_he_rejects_nonpositive_fans(self, rng):
        with pytest.raises(ValueError):
            he_normal(rng, 5, -1)

    def test_zeros(self):
        np.testing.assert_array_equal(zeros((3, 2)), np.zeros((3, 2)))

    def test_reproducible_with_same_seed(self):
        a = glorot_uniform(np.random.default_rng(5), 4, 4)
        b = glorot_uniform(np.random.default_rng(5), 4, 4)
        np.testing.assert_array_equal(a, b)


class TestModelRegistry:
    def test_available_models_nonempty(self):
        names = available_models()
        assert "mlp_small" in names
        assert "linear" in names

    @pytest.mark.parametrize("name", ["mlp_small", "mlp_medium", "mlp_large", "linear"])
    def test_build_every_registered_model(self, name, rng):
        model = build_model(name, input_dim=12, num_classes=4, rng=rng)
        assert isinstance(model, Sequential)
        assert model.forward(rng.normal(size=(3, 12))).shape == (3, 4)

    def test_unknown_model_raises(self, rng):
        with pytest.raises(KeyError):
            build_model("resnet152", 10, 2, rng)

    def test_build_accepts_integer_seed(self):
        model = build_model("linear", 6, 3, rng=0)
        assert model.num_parameters == 6 * 3 + 3

    def test_same_seed_same_parameters(self):
        a = build_model("mlp_small", 8, 3, rng=7)
        b = build_model("mlp_small", 8, 3, rng=7)
        np.testing.assert_array_equal(a.get_flat_parameters(), b.get_flat_parameters())

    def test_different_seeds_different_parameters(self):
        a = build_model("mlp_small", 8, 3, rng=7)
        b = build_model("mlp_small", 8, 3, rng=8)
        assert not np.allclose(a.get_flat_parameters(), b.get_flat_parameters())

    def test_linear_is_smaller_than_mlp(self, rng):
        linear = build_model("linear", 20, 5, rng)
        mlp = build_model("mlp_medium", 20, 5, rng)
        assert linear.num_parameters < mlp.num_parameters

    @pytest.mark.parametrize(
        "dataset", ["mnist_like", "fashion_like", "usps_like", "colorectal_like"]
    )
    def test_model_for_dataset(self, dataset, rng):
        model = model_for_dataset(dataset, input_dim=16, num_classes=5, rng=rng)
        assert model.forward(rng.normal(size=(2, 16))).shape == (2, 5)

    def test_model_for_unknown_dataset_falls_back(self, rng):
        model = model_for_dataset("unknown_dataset", 8, 2, rng)
        assert isinstance(model, Sequential)

"""Unit tests for the Sequential container: flat parameters and gradients."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import ELU, Linear, ReLU
from repro.nn.network import Sequential
from tests.conftest import numerical_gradient


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(11)


@pytest.fixture
def model(rng) -> Sequential:
    return Sequential([Linear(6, 5, rng), ELU(), Linear(5, 3, rng)])


@pytest.fixture
def batch(rng):
    x = rng.normal(size=(10, 6))
    y = rng.integers(0, 3, size=10)
    return x, y


class TestConstruction:
    def test_requires_at_least_one_layer(self):
        with pytest.raises(ValueError):
            Sequential([])

    def test_num_parameters(self, model):
        assert model.num_parameters == (6 * 5 + 5) + (5 * 3 + 3)

    def test_repr_mentions_layers(self, model):
        text = repr(model)
        assert "Linear" in text and "ELU" in text


class TestForward:
    def test_logits_shape(self, model, batch):
        x, _ = batch
        assert model.forward(x).shape == (10, 3)

    def test_predict_returns_class_indices(self, model, batch):
        x, _ = batch
        predictions = model.predict(x)
        assert predictions.shape == (10,)
        assert np.all((predictions >= 0) & (predictions < 3))

    def test_predict_proba_rows_sum_to_one(self, model, batch):
        x, _ = batch
        probabilities = model.predict_proba(x)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0)
        assert np.all(probabilities >= 0)

    def test_forward_is_deterministic(self, model, batch):
        x, _ = batch
        np.testing.assert_allclose(model.forward(x), model.forward(x))


class TestFlatParameters:
    def test_roundtrip(self, model):
        flat = model.get_flat_parameters()
        model.set_flat_parameters(flat * 0.0)
        np.testing.assert_allclose(model.get_flat_parameters(), 0.0)
        model.set_flat_parameters(flat)
        np.testing.assert_allclose(model.get_flat_parameters(), flat)

    def test_length_matches_num_parameters(self, model):
        assert model.get_flat_parameters().size == model.num_parameters

    def test_set_rejects_wrong_length(self, model):
        with pytest.raises(ValueError):
            model.set_flat_parameters(np.zeros(model.num_parameters + 1))

    def test_set_rejects_matrix(self, model):
        with pytest.raises(ValueError):
            model.set_flat_parameters(np.zeros((model.num_parameters, 1)))

    def test_set_changes_forward_output(self, model, batch):
        x, _ = batch
        before = model.forward(x)
        model.set_flat_parameters(model.get_flat_parameters() + 0.5)
        after = model.forward(x)
        assert not np.allclose(before, after)

    def test_clone_is_independent(self, model, batch):
        x, _ = batch
        clone = model.clone()
        np.testing.assert_allclose(clone.forward(x), model.forward(x))
        clone.set_flat_parameters(clone.get_flat_parameters() + 1.0)
        assert not np.allclose(clone.forward(x), model.forward(x))
        # original unaffected
        np.testing.assert_allclose(
            model.get_flat_parameters(), model.get_flat_parameters()
        )


class TestGradients:
    def test_per_example_gradients_shape(self, model, batch):
        x, y = batch
        losses, gradients = model.per_example_gradients(x, y)
        assert losses.shape == (10,)
        assert gradients.shape == (10, model.num_parameters)

    def test_mean_gradient_is_average_of_per_example(self, model, batch):
        x, y = batch
        _, per_example = model.per_example_gradients(x, y)
        _, mean_grad = model.mean_gradient(x, y)
        np.testing.assert_allclose(mean_grad, per_example.mean(axis=0))

    def test_mean_loss_is_average_of_per_example(self, model, batch):
        x, y = batch
        losses, _ = model.per_example_gradients(x, y)
        mean_loss, _ = model.mean_gradient(x, y)
        assert mean_loss == pytest.approx(float(losses.mean()))

    def test_mean_gradient_matches_numerical(self, rng):
        """Analytic mean gradient agrees with central differences."""
        model = Sequential([Linear(4, 4, rng), ELU(), Linear(4, 2, rng)])
        x = rng.normal(size=(6, 4))
        y = rng.integers(0, 2, size=6)
        _, analytic = model.mean_gradient(x, y)
        numeric = numerical_gradient(model, x, y)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_per_example_gradient_matches_single_example_call(self, model, batch):
        """The i-th per-example gradient equals the gradient of a batch of one."""
        x, y = batch
        _, per_example = model.per_example_gradients(x, y)
        for i in (0, 4, 9):
            _, single = model.mean_gradient(x[i : i + 1], y[i : i + 1])
            np.testing.assert_allclose(per_example[i], single, atol=1e-10)

    def test_per_example_gradients_into_preallocated_buffer(self, model, batch):
        x, y = batch
        losses, gradients = model.per_example_gradients(x, y)
        buffer = np.empty((10, model.num_parameters), dtype=np.float64)
        losses_out, gradients_out = model.per_example_gradients(x, y, out=buffer)
        assert gradients_out is buffer
        np.testing.assert_array_equal(gradients_out, gradients)
        np.testing.assert_array_equal(losses_out, losses)

    def test_out_buffer_not_clobbered_by_later_out_none_call(self, model, batch):
        """A retained binding must only be written by calls passing that
        buffer; a same-batch out=None call in between uses its own scratch."""
        x, y = batch
        buffer = np.empty((10, model.num_parameters), dtype=np.float64)
        model.per_example_gradients(x, y, out=buffer)
        snapshot = buffer.copy()
        x2 = x + 1.0  # same batch size, different data
        _, other = model.per_example_gradients(x2, y)
        np.testing.assert_array_equal(buffer, snapshot)
        assert not np.array_equal(other, snapshot)
        # and the binding still works afterwards (cache hit path)
        _, again = model.per_example_gradients(x, y, out=buffer)
        np.testing.assert_array_equal(again, snapshot)

    def test_unbind_releases_buffer_and_rebinding_works(self, model, batch):
        x, y = batch
        buffer = np.empty((10, model.num_parameters), dtype=np.float64)
        _, expected = model.per_example_gradients(x, y, out=buffer)
        expected = expected.copy()
        model.unbind_per_example_grad_buffers()
        assert model._grad_binding is None
        _, rebound = model.per_example_gradients(x, y, out=buffer)
        np.testing.assert_array_equal(rebound, expected)

    def test_per_example_gradients_rejects_bad_out(self, model, batch):
        x, y = batch
        with pytest.raises(ValueError):
            model.per_example_gradients(
                x, y, out=np.empty((9, model.num_parameters), dtype=np.float64)
            )
        with pytest.raises(ValueError):
            model.per_example_gradients(
                x, y, out=np.empty((10, model.num_parameters), dtype=np.float32)
            )

    def test_relu_network_gradient_check(self, rng):
        model = Sequential([Linear(3, 5, rng), ReLU(), Linear(5, 3, rng)])
        x = rng.normal(size=(5, 3)) + 0.1
        y = rng.integers(0, 3, size=5)
        _, analytic = model.mean_gradient(x, y)
        numeric = numerical_gradient(model, x, y)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_gradient_descent_reduces_loss(self, model, batch):
        x, y = batch
        loss_before = model.loss(x, y)
        for _ in range(20):
            _, gradient = model.mean_gradient(x, y)
            model.set_flat_parameters(model.get_flat_parameters() - 0.5 * gradient)
        assert model.loss(x, y) < loss_before

    def test_loss_is_positive(self, model, batch):
        x, y = batch
        assert model.loss(x, y) > 0.0


class TestGradFactorCapture:
    """per_example_grad_factors: the ghost path's rank-1 factor capture."""

    @pytest.fixture
    def rng(self):
        return np.random.default_rng(3)

    def test_factors_reconstruct_per_example_gradients(self, rng):
        model = Sequential([Linear(4, 6, rng), ELU(), Linear(6, 3, rng)])
        x = rng.normal(size=(7, 4))
        y = rng.integers(0, 3, size=7)
        losses_ref, per_example = model.per_example_gradients(x, y)
        losses, factors = model.per_example_grad_factors(x, y)
        np.testing.assert_allclose(losses, losses_ref, rtol=1e-12)
        assert len(factors) == 2
        rebuilt = []
        for layer, inputs, deltas in factors:
            weight_grads = np.einsum("bi,bo->bio", inputs, deltas)
            rebuilt.append(weight_grads.reshape(7, -1))
            rebuilt.append(deltas)
        np.testing.assert_allclose(
            np.concatenate(rebuilt, axis=1), per_example, rtol=1e-12, atol=1e-15
        )

    def test_capture_skips_materialisation(self, rng):
        model = Sequential([Linear(5, 3, rng)])
        x = rng.normal(size=(4, 5))
        y = rng.integers(0, 3, size=4)
        model.per_example_grad_factors(x, y)
        assert model.layers[0].per_example_grads is None
        assert not model.layers[0].capture_grad_factors  # flag restored

    def test_capture_does_not_break_materialized_path(self, rng):
        """Interleaved capture and materialized passes stay independent."""
        model = Sequential([Linear(5, 3, rng)])
        x = rng.normal(size=(4, 5))
        y = rng.integers(0, 3, size=4)
        _, before = model.per_example_gradients(x, y)
        before = before.copy()
        model.per_example_grad_factors(x, y)
        _, after = model.per_example_gradients(x, y)
        np.testing.assert_array_equal(before, after)

    def test_unsupported_layer_raises(self, rng):
        class OpaqueLinear(Linear):
            supports_grad_factors = False

        model = Sequential([OpaqueLinear(4, 2, rng)])
        x = rng.normal(size=(3, 4))
        y = rng.integers(0, 2, size=3)
        with pytest.raises(RuntimeError, match="OpaqueLinear"):
            model.per_example_grad_factors(x, y)
        # the capture flags must be rolled back even on failure
        assert not any(layer.capture_grad_factors for layer in model.layers)


class TestParameterLayout:
    def test_layout_matches_flat_concatenation(self):
        rng = np.random.default_rng(0)
        model = Sequential([Linear(4, 6, rng), ReLU(), Linear(6, 3, rng)])
        flat = model.get_flat_parameters()
        layout = model.parameter_layout()
        assert len(layout) == 2
        for layer, slices in layout:
            for (start, stop, shape), parameter in zip(slices, layer.parameters):
                assert shape == parameter.shape
                np.testing.assert_array_equal(
                    flat[start:stop].reshape(shape), parameter
                )
        stops = [stop for _, slices in layout for _, stop, _ in slices]
        assert stops[-1] == model.num_parameters

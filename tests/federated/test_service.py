"""Tests for service mode: coordinator, remote backend, worker loop.

Workers run as threads inside the test process (the wire protocol does
not care), which keeps the tests fast and lets them assert on exit codes
directly; the true multi-process path is exercised by the CLI smoke
script ``benchmarks/check_service.py``.
"""

from __future__ import annotations

import socket
import threading
import time

import numpy as np
import pytest

from repro.core.config import DPConfig, ServiceConfig
from repro.federated.backends import (
    BACKENDS,
    RetryPolicy,
    TaskFailure,
    available_backends,
    build_backend,
)
from repro.federated.service import (
    CoordinatorServer,
    RemoteBackend,
    RemoteTaskError,
    run_worker,
)
from repro.federated.wire import (
    PROTOCOL_VERSION,
    recv_message,
    send_message,
)
from tests.federated.test_backends import make_pool, make_shards
from tests.helpers import make_model_and_data


def _square(item):
    return item * item


def _boom(item):
    raise ValueError(f"boom {item}")


#: Gate for _wait_for_release; tasks are pickled by reference, so a
#: module-level function + event pair is shared with the worker threads.
_RELEASE = threading.Event()


def _wait_for_release(item):
    _RELEASE.wait(10.0)
    return item


def _silence(line):
    pass


def start_worker_thread(port, name="w", **kwargs):
    """Run ``run_worker`` on a daemon thread; returns (thread, codes)."""
    codes: list[int] = []

    def target():
        codes.append(run_worker(
            "127.0.0.1", port, name=name, log=_silence, **kwargs
        ))

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    return thread, codes


def fake_handshake(port, name="fake"):
    """Connect and register like a worker, but stay hand-driven."""
    sock = socket.create_connection(("127.0.0.1", port), timeout=5.0)
    send_message(sock, {
        "type": "hello", "worker": name, "protocol": PROTOCOL_VERSION,
    })
    welcome = recv_message(sock)
    assert welcome["type"] == "welcome"
    return sock


@pytest.fixture()
def backend():
    instance = RemoteBackend(worker_timeout=20.0)
    yield instance
    instance.shutdown()


class TestRegistryAndConfig:
    def test_remote_backend_registered(self):
        assert "remote" in available_backends()
        assert "service" in BACKENDS.names(include_aliases=True)

    def test_build_through_registry(self):
        from repro.core.config import BackendConfig

        backend = build_backend(BackendConfig(
            name="remote",
            options={"worker_timeout": 5.0, "transport_attempts": 2},
        ))
        assert isinstance(backend, RemoteBackend)
        assert not backend.in_process
        assert backend.transport_policy.max_attempts == 2
        backend.shutdown()

    def test_service_config_validation(self):
        config = ServiceConfig()
        assert config.port == 7733
        with pytest.raises(ValueError):
            ServiceConfig(port=70000)
        with pytest.raises(ValueError):
            ServiceConfig(expected_workers=0)
        with pytest.raises(ValueError):
            ServiceConfig(heartbeat_timeout=0.1, heartbeat_interval=0.5)
        with pytest.raises(ValueError):
            ServiceConfig(transport_attempts=0)

    def test_backend_rejects_leased_resources(self, backend):
        with pytest.raises(TypeError, match="leased resources"):
            backend.map_resilient(_square, [1], resources=[object()])

    def test_coordinator_parameter_validation(self):
        with pytest.raises(ValueError):
            CoordinatorServer(heartbeat_interval=0.0)
        with pytest.raises(ValueError):
            CoordinatorServer(heartbeat_interval=1.0, heartbeat_timeout=0.5)


class TestOrderedExecution:
    def test_map_ordered_single_worker(self, backend):
        thread, codes = start_worker_thread(backend.port)
        try:
            assert backend.server.wait_for_workers(1, timeout=10.0) == 1
            assert backend.map_ordered(_square, [3, 1, 2]) == [9, 1, 4]
        finally:
            backend.shutdown()
        thread.join(timeout=10.0)
        assert codes == [0]  # clean shutdown notification

    def test_map_ordered_many_items_few_workers(self, backend):
        threads = [start_worker_thread(backend.port, name=f"w{i}")
                   for i in range(3)]
        try:
            backend.server.wait_for_workers(3, timeout=10.0)
            items = list(range(20))
            assert backend.map_ordered(_square, items) == [i * i for i in items]
            # The backend is reusable round after round.
            assert backend.map_ordered(_square, [5]) == [25]
        finally:
            backend.shutdown()
        for thread, codes in threads:
            thread.join(timeout=10.0)
            assert codes == [0]

    def test_map_ordered_empty_items(self, backend):
        # Must not touch the network at all (no workers connected).
        assert backend.map_ordered(_square, []) == []

    def test_worker_exception_raises_remote_task_error(self, backend):
        thread, _ = start_worker_thread(backend.port)
        try:
            backend.server.wait_for_workers(1, timeout=10.0)
            with pytest.raises(RemoteTaskError, match="boom 2"):
                backend.map_ordered(_boom, [2])
            # A failed round must not wedge the next one.
            assert backend.map_ordered(_square, [4]) == [16]
        finally:
            backend.shutdown()
        thread.join(timeout=10.0)

    def test_execute_is_not_reentrant(self, backend):
        server = backend.server
        results = []
        _RELEASE.clear()
        thread, _ = start_worker_thread(backend.port)
        try:
            server.wait_for_workers(1, timeout=10.0)
            inner = threading.Thread(
                target=lambda: results.append(
                    backend.map_ordered(_wait_for_release, [1])
                ),
                daemon=True,
            )
            inner.start()
            deadline = time.monotonic() + 5.0
            while server._execution is None and time.monotonic() < deadline:
                time.sleep(0.01)
            with pytest.raises(RuntimeError, match="not reentrant"):
                server.execute(_square, [1], RetryPolicy())
            _RELEASE.set()
            inner.join(timeout=10.0)
            assert results == [[1]]
        finally:
            _RELEASE.set()
            backend.shutdown()
        thread.join(timeout=10.0)


class TestFailureSemantics:
    def test_dead_worker_degrades_to_ordered_task_failure(self):
        """A worker dying mid-task exhausts the budget -> TaskFailure slot."""
        backend = RemoteBackend(transport_attempts=1, worker_timeout=20.0)
        try:
            port = backend.port
            sock = fake_handshake(port)
            backend.server.wait_for_workers(1, timeout=10.0)

            def die_on_task():
                recv_message(sock)  # the dispatched task
                sock.close()  # kill -9, as the coordinator sees it

            killer = threading.Thread(target=die_on_task, daemon=True)
            killer.start()
            # No surviving worker needed: with a budget of one attempt
            # the slot degrades immediately and the round completes.
            results = backend.map_ordered(_square, [7])
            killer.join(timeout=10.0)
            assert len(results) == 1
            assert isinstance(results[0], TaskFailure)
            assert results[0].index == 0
            assert results[0].attempts == 1
            assert "connection lost" in results[0].error
        finally:
            backend.shutdown()

    def test_redispatch_recovers_with_retry_budget(self):
        """With attempts left, the lost task reruns on a surviving worker."""
        backend = RemoteBackend(
            transport_attempts=3, transport_backoff=0.01, worker_timeout=20.0
        )
        try:
            port = backend.port
            sock = fake_handshake(port)
            thread, _ = start_worker_thread(port)
            backend.server.wait_for_workers(2, timeout=10.0)

            def die_on_task():
                recv_message(sock)
                sock.close()

            killer = threading.Thread(target=die_on_task, daemon=True)
            killer.start()
            results = backend.map_ordered(_square, [3, 4])
            killer.join(timeout=10.0)
            assert results == [9, 16]  # no TaskFailure: the retry recovered
        finally:
            backend.shutdown()
        thread.join(timeout=10.0)

    def test_heartbeat_silence_drops_the_link(self):
        server = CoordinatorServer(
            heartbeat_interval=0.05, heartbeat_timeout=0.3, worker_timeout=5.0
        )
        try:
            sock = fake_handshake(server.port)  # registers, never heartbeats
            assert server.wait_for_workers(1, timeout=5.0) == 1
            deadline = time.monotonic() + 5.0
            while server.n_workers and time.monotonic() < deadline:
                time.sleep(0.05)
            assert server.n_workers == 0
            sock.close()
        finally:
            server.close()

    def test_no_workers_raises_connection_error(self):
        backend = RemoteBackend(worker_timeout=0.3)
        try:
            with pytest.raises(ConnectionError, match="no workers connected"):
                backend.map_ordered(_square, [1, 2])
        finally:
            backend.shutdown()

    def test_worker_gives_up_when_no_coordinator(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead_port = probe.getsockname()[1]
        code = run_worker(
            "127.0.0.1", dead_port, reconnect_timeout=0.2, log=_silence
        )
        assert code == 1

    def test_worker_reconnects_to_restarted_coordinator(self):
        """A coordinator crash + rebind: the worker re-registers and serves."""
        first = CoordinatorServer(port=0, worker_timeout=20.0)
        port = first.port
        thread, codes = start_worker_thread(port, reconnect_timeout=30.0)
        try:
            assert first.wait_for_workers(1, timeout=10.0) == 1
            first.close(notify_workers=False)  # what a crash looks like
            second = CoordinatorServer(port=port, worker_timeout=20.0)
            try:
                assert second.wait_for_workers(1, timeout=15.0) == 1
                results = second.execute(_square, [6], RetryPolicy())
                assert results == [36]
            finally:
                second.close()
        finally:
            if not first._closed:
                first.close()
        thread.join(timeout=10.0)
        assert codes == [0]

    def test_backend_restarts_after_shutdown(self):
        """shutdown() must leave the backend reusable on its fixed port."""
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        backend = RemoteBackend(port=port, worker_timeout=20.0)
        try:
            thread, codes = start_worker_thread(port)
            backend.server.wait_for_workers(1, timeout=10.0)
            assert backend.map_ordered(_square, [2]) == [4]
            backend.shutdown()
            thread.join(timeout=10.0)
            assert codes == [0]
            thread, codes = start_worker_thread(port)
            backend.server.wait_for_workers(1, timeout=10.0)
            assert backend.map_ordered(_square, [3]) == [9]
        finally:
            backend.shutdown()
        thread.join(timeout=10.0)


class TestRemotePools:
    """The remote backend keeps the bitwise-identity guarantee."""

    def test_remote_pool_bitwise_identical_to_serial(self):
        model, _ = make_model_and_data(seed=2)
        shards = make_shards(6, seed=3)
        config = DPConfig(batch_size=4, sigma=0.9, momentum=0.2)
        serial = make_pool(shards, config, shard_size=2)
        backend = RemoteBackend(max_workers=2, worker_timeout=20.0)
        remote = make_pool(shards, config, shard_size=2, backend=backend)
        threads = [start_worker_thread(backend.port, name=f"w{i}")
                   for i in range(2)]
        try:
            backend.server.wait_for_workers(2, timeout=10.0)
            for round_index in range(3):
                np.testing.assert_array_equal(
                    remote.compute_uploads(model),
                    serial.compute_uploads(model),
                    err_msg=f"round {round_index}",
                )
        finally:
            backend.shutdown()
        for thread, codes in threads:
            thread.join(timeout=10.0)
            assert codes == [0]

    def test_run_experiment_identical_across_remote_and_serial(self):
        from repro.experiments.presets import benchmark_preset
        from repro.experiments.runner import run_experiment

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        base = benchmark_preset(
            dataset="usps_like", byzantine_fraction=0.4, attack="label_flip",
            defense="two_stage", epochs=1, scale=0.2, n_honest=4,
        )
        serial = run_experiment(base)
        threads = [
            start_worker_thread(port, name=f"w{i}", reconnect_timeout=30.0)
            for i in range(2)
        ]
        remote = run_experiment(base.replace(
            backend="remote",
            backend_kwargs={
                "port": port, "max_workers": 2, "worker_timeout": 30.0,
            },
        ))
        for thread, codes in threads:
            thread.join(timeout=15.0)
            assert codes == [0]
        assert serial.history.as_dict() == remote.history.as_dict()

    def test_lost_worker_mid_training_degrades_not_crashes(self):
        """Transport exhaustion surfaces as lost workers, not an exception."""
        from repro.federated.worker import WorkerPool

        model, _ = make_model_and_data(seed=4)
        shards = make_shards(4, seed=5)
        backend = RemoteBackend(
            transport_attempts=1, worker_timeout=20.0
        )
        pool = WorkerPool(
            shards,
            DPConfig(batch_size=4, sigma=0.5),
            [np.random.default_rng(100 + i) for i in range(4)],
            shard_size=2,
            backend=backend,
        )
        try:
            port = backend.port
            sock = fake_handshake(port)
            backend.server.wait_for_workers(1, timeout=10.0)

            def die_on_task():
                recv_message(sock)
                sock.close()

            killer = threading.Thread(target=die_on_task, daemon=True)
            killer.start()
            thread, _ = start_worker_thread(port)
            uploads = pool.compute_uploads(model)
            killer.join(timeout=10.0)
            report = pool.last_fault_report
            assert report is not None
            assert report.crashed_shards == 1
            lost = report.failed_workers
            assert lost.sum() == 2  # one shard of two workers dropped out
            np.testing.assert_array_equal(uploads[lost], 0.0)
            assert np.all(uploads[~lost] != 0.0)
        finally:
            backend.shutdown()
        thread.join(timeout=10.0)

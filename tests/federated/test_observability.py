"""Tests for the coordinator observability layer.

Covers the versioned snapshot board (lock-free reads under concurrent
publication), the HTTP status/metrics/admin endpoint, the admin verbs'
effect on coordinator dispatch (pause, drain), the JSONL trace recorder
(including its asserted bitwise-neutrality through the CLI), and the
concurrent reader/writer behaviour of the metrics stream the ``/metrics``
route is built on.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.cli import main
from repro.core.config import ObservabilityConfig
from repro.federated.backends import RetryPolicy, SerialBackend, TaskFailure
from repro.federated.observability import (
    AdminError,
    StatusBoard,
    StatusServer,
    StatusSnapshot,
    TraceRecorder,
    fetch_json,
    post_admin,
    render_prometheus,
)
from repro.federated.pipeline import MetricsWriter, RoundEndEvent, read_metrics
from repro.federated.service import CoordinatorServer
from tests.federated.test_service import start_worker_thread


def _square(item):
    return item * item


FAST_ARGUMENTS = [
    "--dataset", "usps_like", "--byzantine", "0.5", "--epochs", "1", "--seed", "1",
]


# ---------------------------------------------------------------------- #
# config surface
# ---------------------------------------------------------------------- #
class TestObservabilityConfig:
    def test_defaults_are_off(self):
        config = ObservabilityConfig()
        assert config.status_port is None
        assert config.trace_path is None
        assert not config.enabled

    def test_enabled_with_either_feature(self):
        assert ObservabilityConfig(status_port=0).enabled
        assert ObservabilityConfig(trace_path="t.jsonl").enabled

    def test_rejects_bad_port(self):
        with pytest.raises(ValueError, match="status_port"):
            ObservabilityConfig(status_port=70000)

    def test_rejects_empty_host(self):
        with pytest.raises(ValueError, match="status_host"):
            ObservabilityConfig(status_host="")


# ---------------------------------------------------------------------- #
# the snapshot board
# ---------------------------------------------------------------------- #
class TestStatusBoard:
    def test_starts_at_version_zero(self):
        board = StatusBoard()
        snapshot = board.snapshot()
        assert snapshot.version == 0
        assert dict(snapshot.payload) == {}

    def test_publish_merges_and_bumps_version(self):
        board = StatusBoard()
        board.publish(round=1, phase="running")
        board.publish(round=2)
        snapshot = board.snapshot()
        assert snapshot.version == 2
        assert snapshot.payload["round"] == 2
        assert snapshot.payload["phase"] == "running"  # carried over

    def test_snapshots_are_immutable(self):
        board = StatusBoard()
        board.publish(round=1)
        snapshot = board.snapshot()
        with pytest.raises(TypeError):
            snapshot.payload["round"] = 99
        assert isinstance(snapshot, StatusSnapshot)

    def test_old_snapshots_unaffected_by_new_publishes(self):
        board = StatusBoard()
        board.publish(round=1)
        old = board.snapshot()
        board.publish(round=2)
        assert old.payload["round"] == 1

    def test_concurrent_publishers_never_lose_versions(self):
        """N writers x M publishes -> exactly N*M version bumps, and a
        reader polling concurrently only ever sees consistent pairs."""
        board = StatusBoard()
        writers, per_writer = 4, 50
        seen: list[tuple[int, int]] = []
        stop = threading.Event()

        def read_loop():
            while not stop.is_set():
                snapshot = board.snapshot()
                value = snapshot.payload.get("value")
                if value is not None:
                    seen.append((snapshot.version, value))

        def write_loop(writer):
            for i in range(per_writer):
                board.publish(value=writer * per_writer + i)

        reader = threading.Thread(target=read_loop, daemon=True)
        reader.start()
        threads = [
            threading.Thread(target=write_loop, args=(w,)) for w in range(writers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop.set()
        reader.join(timeout=5.0)
        assert board.snapshot().version == writers * per_writer
        # Versions observed by the reader are monotonically non-decreasing.
        versions = [version for version, _ in seen]
        assert versions == sorted(versions)


# ---------------------------------------------------------------------- #
# the trace recorder
# ---------------------------------------------------------------------- #
class TestTraceRecorder:
    def test_span_and_event_records(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceRecorder(path) as tracer:
            with tracer.trace_span("stage", "honest_uploads", round=3):
                pass
            tracer.trace_event("retry", "task_lost", index=1, attempts=2)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == 2
        span, event = records
        assert span["kind"] == "stage"
        assert span["name"] == "honest_uploads"
        assert span["round"] == 3
        assert span["duration"] >= 0.0
        assert event["kind"] == "retry"
        assert "duration" not in event
        assert tracer.records_written == 2

    def test_records_are_sorted_json(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceRecorder(path) as tracer:
            tracer.trace_event("e", "n", zebra=1, alpha=2)
        line = path.read_text().splitlines()[0]
        keys = list(json.loads(line))
        assert keys == sorted(keys)

    def test_span_written_even_when_body_raises(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = TraceRecorder(path)
        with pytest.raises(RuntimeError):
            with tracer.trace_span("stage", "boom"):
                raise RuntimeError("boom")
        tracer.close()
        assert len(path.read_text().splitlines()) == 1

    def test_close_is_idempotent_and_drops_late_records(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = TraceRecorder(path)
        tracer.trace_event("e", "one")
        tracer.close()
        tracer.close()
        tracer.trace_event("e", "after-close")  # silently dropped
        assert len(path.read_text().splitlines()) == 1
        assert tracer.records_written == 1

    def test_thread_safe_interleaved_writes(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = TraceRecorder(path)

        def emit(thread_index):
            for i in range(100):
                tracer.trace_event("e", f"t{thread_index}", i=i)

        threads = [
            threading.Thread(target=emit, args=(t,)) for t in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        tracer.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 400
        # Every line is intact JSON: no torn interleavings.
        for line in lines:
            json.loads(line)


class TestBackendTracing:
    def test_serial_backend_emits_task_spans(self, tmp_path):
        tracer = TraceRecorder(tmp_path / "t.jsonl")
        backend = SerialBackend()
        backend.set_tracer(tracer)
        assert backend.map_ordered(_square, [1, 2, 3]) == [1, 4, 9]
        tracer.close()
        records = [
            json.loads(line)
            for line in (tmp_path / "t.jsonl").read_text().splitlines()
        ]
        assert [r["kind"] for r in records] == ["task"] * 3

    def test_tracing_does_not_change_results(self):
        plain = SerialBackend().map_ordered(_square, range(10))
        traced_backend = SerialBackend()
        traced_backend.set_tracer(TraceRecorder("/dev/null"))
        assert traced_backend.map_ordered(_square, range(10)) == plain

    def test_resilient_retries_emit_events(self, tmp_path):
        tracer = TraceRecorder(tmp_path / "t.jsonl")
        backend = SerialBackend()
        backend.set_tracer(tracer)
        from repro.federated.backends import TransientTaskError

        calls = {"n": 0}

        def flaky(item):
            calls["n"] += 1
            if calls["n"] == 1:
                raise TransientTaskError("first try fails")
            return item

        results = backend.map_resilient(
            flaky, [7], policy=RetryPolicy(max_attempts=3)
        )
        assert results == [7]
        tracer.close()
        kinds = [
            json.loads(line)["kind"]
            for line in (tmp_path / "t.jsonl").read_text().splitlines()
        ]
        assert "retry" in kinds


# ---------------------------------------------------------------------- #
# metrics stream under concurrent read/write (the /metrics pattern)
# ---------------------------------------------------------------------- #
class TestMetricsConcurrency:
    def test_reader_polls_while_writer_appends(self, tmp_path):
        """read_metrics on a live file only ever sees complete records."""
        path = tmp_path / "metrics.jsonl"
        writer = MetricsWriter(path)
        total = 40
        done = threading.Event()
        observed: list[int] = []

        def poll():
            while not done.is_set():
                if path.exists():
                    records = read_metrics(path)
                    observed.append(len(records))
                    for record in records:
                        assert set(record) >= {"round", "total_rounds", "accuracy"}
            observed.append(len(read_metrics(path)))

        reader = threading.Thread(target=poll, daemon=True)
        reader.start()
        for round_index in range(total):
            writer.on_round_end(RoundEndEvent(
                round_index=round_index,
                total_rounds=total,
                diagnostics={"fault_lost": 0.0},
                accuracy=0.5,
            ))
        writer.close()
        done.set()
        reader.join(timeout=5.0)
        assert observed[-1] == total
        # Counts only grow: a poll never observes a rollback.
        assert observed == sorted(observed)

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        with MetricsWriter(path) as writer:
            writer.on_round_end(RoundEndEvent(
                round_index=0, total_rounds=2, diagnostics={}, accuracy=0.1
            ))
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"round": 1, "tot')  # killed mid-write
        records = read_metrics(path)
        assert len(records) == 1
        assert records[0]["round"] == 0


# ---------------------------------------------------------------------- #
# coordinator admin surface
# ---------------------------------------------------------------------- #
@pytest.fixture
def coordinator():
    server = CoordinatorServer(worker_timeout=20.0)
    yield server
    server.close()


class TestCoordinatorAdmin:
    def test_drain_requires_connected_worker(self, coordinator):
        with pytest.raises(KeyError, match="nope"):
            coordinator.drain("nope")

    def test_undrain_requires_draining_worker(self, coordinator):
        with pytest.raises(KeyError, match="not draining"):
            coordinator.undrain("idle")

    def test_worker_status_tracks_churn(self, coordinator):
        assert coordinator.worker_status() == []
        thread_a, codes_a = start_worker_thread(coordinator.port, name="a")
        thread_b, codes_b = start_worker_thread(coordinator.port, name="b")
        assert coordinator.wait_for_workers(2, timeout=10.0) == 2
        rows = coordinator.worker_status()
        assert [row["name"] for row in rows] == ["a", "b"]
        assert all(not row["busy"] and not row["draining"] for row in rows)
        coordinator.close()
        thread_a.join(timeout=10.0)
        thread_b.join(timeout=10.0)
        assert codes_a == [0] and codes_b == [0]
        assert coordinator.worker_status() == []

    def test_drained_worker_gets_no_new_tasks(self, coordinator):
        thread_a, _ = start_worker_thread(coordinator.port, name="a")
        thread_b, _ = start_worker_thread(coordinator.port, name="b")
        assert coordinator.wait_for_workers(2, timeout=10.0) == 2
        coordinator.drain("b")
        assert coordinator.draining == {"b"}
        results = coordinator.execute(_square, list(range(12)), RetryPolicy())
        assert results == [i * i for i in range(12)]
        rows = {row["name"]: row for row in coordinator.worker_status()}
        assert rows["b"]["dispatched"] == 0
        assert rows["b"]["draining"]
        assert rows["a"]["dispatched"] == 12
        assert rows["a"]["bytes_sent"] > 0
        coordinator.undrain("b")
        assert coordinator.draining == set()
        coordinator.execute(_square, [1], RetryPolicy())
        coordinator.close()
        thread_a.join(timeout=10.0)
        thread_b.join(timeout=10.0)

    def test_drain_is_idempotent(self, coordinator):
        thread, _ = start_worker_thread(coordinator.port, name="a")
        assert coordinator.wait_for_workers(1, timeout=10.0) == 1
        coordinator.drain("a")
        coordinator.drain("a")
        assert coordinator.draining == {"a"}
        coordinator.close()
        thread.join(timeout=10.0)

    def test_pause_stops_dispatch_until_resume(self, coordinator):
        thread, _ = start_worker_thread(coordinator.port, name="a")
        assert coordinator.wait_for_workers(1, timeout=10.0) == 1
        coordinator.pause()
        assert coordinator.paused
        outcome: list = []
        runner = threading.Thread(
            target=lambda: outcome.append(
                coordinator.execute(_square, [1, 2, 3], RetryPolicy())
            ),
            daemon=True,
        )
        runner.start()
        time.sleep(0.4)
        assert not outcome  # paused: nothing dispatched, nothing finished
        assert all(
            row["dispatched"] == 0 for row in coordinator.worker_status()
        )
        coordinator.resume()
        assert not coordinator.paused
        runner.join(timeout=10.0)
        assert outcome == [[1, 4, 9]]
        coordinator.close()
        thread.join(timeout=10.0)

    def test_all_drained_trips_a_distinguishing_starvation_error(self):
        server = CoordinatorServer(worker_timeout=0.5)
        try:
            thread, _ = start_worker_thread(server.port, name="a")
            assert server.wait_for_workers(1, timeout=10.0) == 1
            server.drain("a")
            with pytest.raises(ConnectionError, match="draining"):
                server.execute(_square, [1, 2], RetryPolicy())
        finally:
            server.close()
            thread.join(timeout=10.0)


# ---------------------------------------------------------------------- #
# the HTTP endpoint against a live coordinator
# ---------------------------------------------------------------------- #
class TestStatusServer:
    @pytest.fixture
    def stack(self, coordinator):
        board = StatusBoard()
        board.publish(phase="running", round=4, rounds_completed=4,
                      metrics={"round": 3, "accuracy": 0.75})
        server = StatusServer(board, coordinator, port=0)
        yield board, server, coordinator
        server.close()

    def test_healthz(self, stack):
        _, server, _ = stack
        assert fetch_json("127.0.0.1", server.port, "/healthz") == {"status": "ok"}

    def test_status_merges_board_and_worker_table(self, stack):
        _, server, coordinator = stack
        thread, _ = start_worker_thread(coordinator.port, name="w0")
        assert coordinator.wait_for_workers(1, timeout=10.0) == 1
        payload = fetch_json("127.0.0.1", server.port, "/status")
        assert payload["phase"] == "running"
        assert payload["round"] == 4
        assert payload["paused"] is False
        assert payload["draining"] == []
        assert [row["name"] for row in payload["workers"]] == ["w0"]
        assert "metrics" not in payload  # /metrics serves the record
        coordinator.close()
        thread.join(timeout=10.0)

    def test_metrics_json_and_prometheus(self, stack):
        _, server, _ = stack
        payload = fetch_json("127.0.0.1", server.port, "/metrics")
        assert payload["record"] == {"round": 3, "accuracy": 0.75}
        import urllib.request

        with urllib.request.urlopen(
            f"http://127.0.0.1:{server.port}/metrics?format=prometheus",
            timeout=5.0,
        ) as reply:
            text = reply.read().decode()
        assert "repro_up 1" in text
        assert "repro_accuracy 0.75" in text
        assert "repro_rounds_completed_total 4" in text

    def test_unknown_path_is_404(self, stack):
        _, server, _ = stack
        with pytest.raises(AdminError) as excinfo:
            fetch_json("127.0.0.1", server.port, "/nope")
        assert excinfo.value.status == 404

    def test_admin_pause_resume_roundtrip(self, stack):
        _, server, coordinator = stack
        reply = post_admin("127.0.0.1", server.port, "pause")
        assert reply["paused"] is True
        assert coordinator.paused
        reply = post_admin("127.0.0.1", server.port, "resume")
        assert reply["paused"] is False
        assert not coordinator.paused

    def test_admin_drain_roundtrip(self, stack):
        _, server, coordinator = stack
        thread, _ = start_worker_thread(coordinator.port, name="w0")
        assert coordinator.wait_for_workers(1, timeout=10.0) == 1
        reply = post_admin("127.0.0.1", server.port, "drain", "w0")
        assert reply["draining"] == ["w0"]
        assert coordinator.draining == {"w0"}
        post_admin("127.0.0.1", server.port, "undrain", "w0")
        assert coordinator.draining == set()
        coordinator.close()
        thread.join(timeout=10.0)

    def test_admin_unknown_worker_is_404(self, stack):
        _, server, _ = stack
        with pytest.raises(AdminError) as excinfo:
            post_admin("127.0.0.1", server.port, "drain", "ghost")
        assert excinfo.value.status == 404

    def test_admin_unknown_verb_is_400(self, stack):
        _, server, _ = stack
        with pytest.raises(AdminError) as excinfo:
            post_admin("127.0.0.1", server.port, "explode")
        assert excinfo.value.status == 400

    def test_admin_without_coordinator_is_503(self):
        server = StatusServer(StatusBoard(), None, port=0)
        try:
            with pytest.raises(AdminError) as excinfo:
                post_admin("127.0.0.1", server.port, "pause")
            assert excinfo.value.status == 503
        finally:
            server.close()

    def test_unreachable_endpoint_raises_connection_error(self):
        # Maps to CLI exit code 3, like every other connection failure.
        probe = StatusServer(StatusBoard(), None, port=0)
        port = probe.port
        probe.close()
        with pytest.raises(ConnectionError):
            fetch_json("127.0.0.1", port, "/status", timeout=1.0)


class TestPrometheusRendering:
    def test_skips_non_numeric_values(self):
        text = render_prometheus(
            {"accuracy": None, "note": "hi", "ok": True, "round": 2}, 3
        )
        assert "repro_round 2" in text
        assert "accuracy" not in text
        assert "note" not in text
        assert "repro_ok" not in text  # booleans are not gauges

    def test_handles_missing_record(self):
        text = render_prometheus(None, 0)
        assert "repro_up 1" in text


# ---------------------------------------------------------------------- #
# bitwise neutrality through the CLI (the asserted gate)
# ---------------------------------------------------------------------- #
class TestTraceNeutrality:
    def test_run_output_and_metrics_identical_with_tracing(
        self, tmp_path, capsys
    ):
        """--trace-out changes the trace file and nothing else."""
        plain_metrics = tmp_path / "plain.jsonl"
        assert main([
            "run", *FAST_ARGUMENTS, "--attack", "gaussian",
            "--metrics-out", str(plain_metrics),
        ]) == 0
        plain_output = capsys.readouterr().out

        traced_metrics = tmp_path / "traced.jsonl"
        trace = tmp_path / "trace.jsonl"
        assert main([
            "run", *FAST_ARGUMENTS, "--attack", "gaussian",
            "--metrics-out", str(traced_metrics),
            "--trace-out", str(trace),
        ]) == 0
        traced_output = capsys.readouterr().out

        strip = lambda text: [  # noqa: E731 - tiny local normaliser
            line for line in text.splitlines()
            if "per-round metrics written to" not in line
        ]
        assert strip(traced_output) == strip(plain_output)
        assert traced_metrics.read_bytes() == plain_metrics.read_bytes()
        records = [
            json.loads(line) for line in trace.read_text().splitlines()
        ]
        assert records  # tracing actually recorded spans
        kinds = {record["kind"] for record in records}
        assert {"round", "stage"} <= kinds


class TestRemoteExecutionTracing:
    def test_wire_and_status_seams_on_a_live_execution(self, tmp_path):
        """Low-level check that execute() emits wire round-trip events."""
        tracer = TraceRecorder(tmp_path / "t.jsonl")
        server = CoordinatorServer(worker_timeout=20.0)
        try:
            server.set_tracer(tracer)
            thread, _ = start_worker_thread(server.port, name="w0")
            assert server.wait_for_workers(1, timeout=10.0) == 1
            results = server.execute(_square, [2, 3], RetryPolicy())
            assert results == [4, 9]
            assert not any(
                isinstance(result, TaskFailure) for result in results
            )
        finally:
            server.close()
            thread.join(timeout=10.0)
        tracer.close()
        records = [
            json.loads(line)
            for line in (tmp_path / "t.jsonl").read_text().splitlines()
        ]
        trips = [r for r in records if r["kind"] == "wire"]
        assert len(trips) == 2
        assert all(r["worker"] == "w0" for r in trips)
        assert all(r["result_bytes"] > 0 for r in trips)

"""Tests for the length-prefixed JSON wire protocol of service mode."""

import socket
import struct
import threading

import numpy as np
import pytest

from repro.federated.wire import (
    MAX_MESSAGE_BYTES,
    WireError,
    decode_blob,
    encode_blob,
    recv_message,
    send_message,
)


@pytest.fixture()
def pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


class TestMessageRoundTrip:
    def test_simple_message(self, pair):
        left, right = pair
        send_message(left, {"type": "heartbeat"})
        assert recv_message(right) == {"type": "heartbeat"}

    def test_preserves_fields_and_order_independence(self, pair):
        left, right = pair
        message = {"type": "task", "task_id": 7, "blob": "abc", "nested": {"a": [1, 2]}}
        send_message(left, message)
        assert recv_message(right) == message

    def test_multiple_messages_in_sequence(self, pair):
        left, right = pair
        for index in range(5):
            send_message(left, {"type": "task", "task_id": index})
        received = [recv_message(right)["task_id"] for _ in range(5)]
        assert received == list(range(5))

    def test_large_message(self, pair):
        left, right = pair
        blob = "x" * 500_000
        done = threading.Thread(
            target=send_message, args=(left, {"type": "task", "blob": blob})
        )
        done.start()
        message = recv_message(right)
        done.join()
        assert message["blob"] == blob

    def test_unicode_payload(self, pair):
        left, right = pair
        send_message(left, {"type": "hello", "worker": "wörker-π"})
        assert recv_message(right)["worker"] == "wörker-π"


class TestFraming:
    def test_eof_mid_frame_raises_connection_error(self, pair):
        left, right = pair
        body = b'{"type": "heartbeat"}'
        left.sendall(struct.pack(">I", len(body)) + body[:5])
        left.close()
        with pytest.raises(ConnectionError):
            recv_message(right)

    def test_eof_before_header_raises_connection_error(self, pair):
        left, right = pair
        left.close()
        with pytest.raises(ConnectionError):
            recv_message(right)

    def test_oversized_frame_rejected(self, pair):
        left, right = pair
        left.sendall(struct.pack(">I", MAX_MESSAGE_BYTES + 1))
        with pytest.raises(WireError, match="above the"):
            recv_message(right)

    def test_invalid_json_rejected(self, pair):
        left, right = pair
        body = b"not json at all"
        left.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(WireError):
            recv_message(right)

    def test_non_object_json_rejected(self, pair):
        left, right = pair
        body = b"[1, 2, 3]"
        left.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(WireError):
            recv_message(right)

    def test_object_without_type_rejected(self, pair):
        left, right = pair
        body = b'{"task_id": 1}'
        left.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(WireError, match="type"):
            recv_message(right)

    def test_wire_error_is_a_connection_error(self):
        # The coordinator and worker loops catch ConnectionError for every
        # way a peer can go bad; protocol violations must flow through it.
        assert issubclass(WireError, ConnectionError)


class TestBlobs:
    def test_round_trips_arbitrary_python_objects(self):
        payload = {"a": (1, 2), "b": [None, "x"]}
        assert decode_blob(encode_blob(payload)) == payload

    def test_round_trips_numpy_arrays_bitwise(self):
        rng = np.random.default_rng(0)
        array = rng.standard_normal((7, 13))
        restored = decode_blob(encode_blob(array))
        assert restored.dtype == array.dtype
        np.testing.assert_array_equal(restored, array)

    def test_blob_is_json_safe_text(self, pair):
        left, right = pair
        blob = encode_blob(np.arange(10))
        assert isinstance(blob, str)
        send_message(left, {"type": "result", "blob": blob})
        message = recv_message(right)
        np.testing.assert_array_equal(decode_blob(message["blob"]), np.arange(10))

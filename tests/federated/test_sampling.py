"""Unit tests of the cohort-sampler axis and the lazy worker source.

The load-bearing property: a round's participation plan (and every
worker's data/noise stream) is a pure function of stable identifiers --
``(seed, round_index)`` for plans, ``(seed, worker_id[, round_index])``
for workers -- never of execution order.  That is what makes subsampling
traces replay bit-identically across backends and restarts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import make_classification
from repro.federated.sampling import (
    SAMPLERS,
    CohortSampler,
    FixedSampler,
    UniformSampler,
    WeightedSampler,
    WorkerSource,
    build_sampler,
    derive_rng,
)


class TestDeriveRng:
    def test_equal_keys_equal_streams(self):
        a = derive_rng(7, "sampler", 3).standard_normal(8)
        b = derive_rng(7, "sampler", 3).standard_normal(8)
        np.testing.assert_array_equal(a, b)

    def test_distinct_counters_distinct_streams(self):
        a = derive_rng(7, "sampler", 3).standard_normal(8)
        b = derive_rng(7, "sampler", 4).standard_normal(8)
        assert not np.array_equal(a, b)

    def test_distinct_components_distinct_streams(self):
        a = derive_rng(7, "worker", 3).standard_normal(8)
        b = derive_rng(7, "sampler", 3).standard_normal(8)
        assert not np.array_equal(a, b)


class TestUniformSampler:
    def test_plan_is_valid_cohort(self):
        plan = UniformSampler(seed=11).draw(0, population=1000, cohort=64)
        assert plan.shape == (64,)
        assert plan.dtype == np.int64
        assert np.all(np.diff(plan) > 0)  # sorted, unique
        assert plan[0] >= 0 and plan[-1] < 1000

    def test_plan_depends_only_on_seed_and_round(self):
        # A fresh instance, and an instance that has already drawn other
        # rounds in a different order, agree on every round's plan.
        fresh = UniformSampler(seed=5)
        scrambled = UniformSampler(seed=5)
        for round_index in (9, 2, 4):
            scrambled.draw(round_index, 500, 20)
        for round_index in range(6):
            np.testing.assert_array_equal(
                fresh.draw(round_index, 500, 20),
                UniformSampler(seed=5).draw(round_index, 500, 20),
            )
            np.testing.assert_array_equal(
                fresh.draw(round_index, 500, 20),
                scrambled.draw(round_index, 500, 20),
            )

    def test_rounds_differ(self):
        sampler = UniformSampler(seed=3)
        assert not np.array_equal(
            sampler.draw(0, 10_000, 64), sampler.draw(1, 10_000, 64)
        )

    def test_full_population_cohort(self):
        plan = UniformSampler(seed=1).draw(0, population=16, cohort=16)
        np.testing.assert_array_equal(plan, np.arange(16))

    def test_draw_cost_independent_of_population(self):
        # Floyd's algorithm touches `cohort` candidates; a huge registered
        # population must not allocate population-sized scratch.
        plan = UniformSampler(seed=2).draw(0, population=10**9, cohort=32)
        assert plan.shape == (32,)
        assert np.all(np.diff(plan) > 0)

    @pytest.mark.parametrize("population, cohort", [(0, 1), (10, 0), (10, 11)])
    def test_invalid_sizes_rejected(self, population, cohort):
        with pytest.raises(ValueError):
            UniformSampler().draw(0, population, cohort)


class TestFixedAndWeighted:
    def test_fixed_is_prefix(self):
        plan = FixedSampler().draw(5, population=100, cohort=7)
        np.testing.assert_array_equal(plan, np.arange(7))

    def test_weighted_explicit_weights_bias(self):
        # Workers 90..99 carry all the weight: every draw stays in there.
        weights = np.zeros(100)
        weights[90:] = 1.0
        sampler = WeightedSampler(seed=4, weights=weights)
        for round_index in range(5):
            plan = sampler.draw(round_index, 100, 5)
            assert plan.min() >= 90

    def test_weighted_exponent_skews_high_ids(self):
        skewed = WeightedSampler(seed=6, exponent=4.0)
        counts = np.zeros(50)
        for round_index in range(40):
            counts[skewed.draw(round_index, 50, 10)] += 1
        assert counts[40:].sum() > counts[:10].sum()

    def test_weighted_wrong_length_rejected(self):
        sampler = WeightedSampler(seed=0, weights=np.ones(8))
        with pytest.raises(ValueError):
            sampler.draw(0, population=10, cohort=2)


class TestRegistryAndState:
    def test_builtins_registered(self):
        names = SAMPLERS.names()
        for name in ("uniform", "fixed", "weighted"):
            assert name in names

    def test_build_sampler_injects_default_seed(self):
        sampler = build_sampler("uniform", default_seed=42)
        assert sampler.seed == 42
        explicit = build_sampler("uniform", default_seed=42, seed=7)
        assert explicit.seed == 7

    def test_state_dict_round_trip(self):
        sampler = UniformSampler(seed=9)
        for round_index in range(3):
            sampler.draw(round_index, 100, 8)
        state = sampler.state_dict()
        assert state == {"rounds_drawn": 3}
        restored = UniformSampler(seed=9)
        restored.load_state_dict(state)
        assert restored.rounds_drawn == 3
        # The restored sampler continues with the identical plan stream.
        np.testing.assert_array_equal(
            restored.draw(3, 100, 8), UniformSampler(seed=9).draw(3, 100, 8)
        )

    def test_base_plan_abstract(self):
        with pytest.raises(NotImplementedError):
            CohortSampler().draw(0, 10, 2)

    def test_custom_sampler_via_public_registry(self):
        @SAMPLERS.register("every_other_test", summary="even worker ids")
        class EveryOther(CohortSampler):
            def _plan(self, round_index, population, cohort):
                return np.arange(cohort, dtype=np.int64) * 2

        try:
            plan = build_sampler("every_other_test").draw(0, 100, 5)
            np.testing.assert_array_equal(plan, [0, 2, 4, 6, 8])
        finally:
            SAMPLERS.unregister("every_other_test")


@pytest.fixture(scope="module")
def base_dataset():
    return make_classification(
        n_samples=60,
        n_features=8,
        n_classes=3,
        rng=np.random.default_rng(0),
        name="sampling-base",
    )


class TestWorkerSource:
    def test_len_and_dim(self, base_dataset):
        source = WorkerSource(base_dataset, population=10**6, local_size=20, seed=1)
        assert len(source) == 10**6
        assert source.dim == base_dataset.dim

    def test_dataset_pure_function_of_worker_id(self, base_dataset):
        source = WorkerSource(base_dataset, population=1000, local_size=20, seed=1)
        first = source.dataset(637)
        # Accessing other workers in between must not perturb worker 637.
        source.dataset(12)
        source.dataset(999)
        again = source.dataset(637)
        np.testing.assert_array_equal(first.features, again.features)
        np.testing.assert_array_equal(first.labels, again.labels)

    def test_distinct_workers_distinct_data(self, base_dataset):
        source = WorkerSource(base_dataset, population=1000, local_size=20, seed=1)
        a, b = source.dataset(3), source.dataset(4)
        assert not np.array_equal(a.features, b.features)

    def test_round_rng_keyed_by_id_and_round(self, base_dataset):
        source = WorkerSource(base_dataset, population=100, local_size=10, seed=2)
        same = source.round_rng(7, 3).standard_normal(4)
        np.testing.assert_array_equal(
            same, source.round_rng(7, 3).standard_normal(4)
        )
        assert not np.array_equal(
            same, source.round_rng(7, 4).standard_normal(4)
        )
        assert not np.array_equal(
            same, source.round_rng(8, 3).standard_normal(4)
        )

    def test_cohort_helpers_match_scalar_calls(self, base_dataset):
        source = WorkerSource(base_dataset, population=50, local_size=10, seed=3)
        ids = np.array([4, 17, 30])
        for dataset, worker_id in zip(source.datasets(ids), ids):
            np.testing.assert_array_equal(
                dataset.features, source.dataset(worker_id).features
            )
        for rng, worker_id in zip(source.round_rngs(ids, 2), ids):
            np.testing.assert_array_equal(
                rng.standard_normal(3),
                source.round_rng(worker_id, 2).standard_normal(3),
            )

    def test_out_of_range_worker_rejected(self, base_dataset):
        source = WorkerSource(base_dataset, population=10, local_size=5, seed=0)
        with pytest.raises(ValueError):
            source.dataset(10)
        with pytest.raises(ValueError):
            source.round_rng(-1, 0)

    def test_oversampling_small_base_replaces(self, base_dataset):
        source = WorkerSource(base_dataset, population=10, local_size=100, seed=0)
        assert len(source.dataset(0)) == 100

"""End-to-end cross-device (population/cohort) mode.

The guarantees under test:

- a population-mode run is deterministic and bitwise-identical across
  execution backends (serial / threaded / remote), because every stream
  -- sampler plans, worker data, per-round noise -- is keyed by stable
  identifiers, never execution order;
- the out-of-core streaming aggregation path engages on clean protocol
  rounds and is bitwise-identical to the in-memory path;
- a full-state snapshot restores the sampler mid-schedule, so a resumed
  run replays the identical participation trace;
- faults compose: partial cohorts under fault injection stay
  backend-invariant, with per-worker server state keyed by global ids.

Cross-backend comparisons pin ``shard_size`` so serial and parallel
pools share the same shard partition (the documented sharding caveat:
degenerate small-row GEMMs may hit different BLAS micro-kernels when the
partitions differ).
"""

from __future__ import annotations

import socket
import threading

import numpy as np
import pytest

from repro.experiments.presets import benchmark_preset
from repro.experiments.runner import prepare_experiment, run_experiment
from repro.federated.pipeline import Checkpoint, RoundPipeline
from repro.federated.state import load_round_state

BASE = dict(
    dataset="usps_like",
    scale=0.2,
    epochs=1,
    population=300,
    cohort=8,
    shard_size=4,  # identical shard partition on every backend
    seed=13,
)


def population_config(**overrides):
    merged = {**BASE, **overrides}
    return benchmark_preset(**merged)


def run_params(config, tmp_path=None, resume_from=None):
    """History dict plus final flat parameters of one run."""
    callbacks = []
    if tmp_path is not None:
        callbacks.append(Checkpoint(every=1, directory=tmp_path, full_state=True))
    setup = prepare_experiment(config, resume_from=resume_from)
    try:
        history = setup.simulation.run(callbacks)
        parameters = setup.simulation.model.get_flat_parameters().copy()
    finally:
        setup.simulation.close()
    return history.as_dict(), parameters


class TestPopulationRuns:
    def test_run_completes_with_metadata(self):
        result = run_experiment(population_config())
        assert result.metadata["population"] == 300
        assert result.metadata["cohort"] == 8
        assert np.isfinite(result.final_accuracy)

    def test_repeat_run_bitwise_deterministic(self):
        config = population_config(byzantine_fraction=0.25, attack="label_flip")
        _, first = run_params(config)
        _, second = run_params(config)
        np.testing.assert_array_equal(first, second)

    def test_serial_vs_threaded_bitwise(self):
        config = population_config(byzantine_fraction=0.25, attack="label_flip")
        _, serial = run_params(config)
        _, threaded = run_params(
            config.replace(backend="threaded", backend_kwargs={"max_workers": 2})
        )
        np.testing.assert_array_equal(serial, threaded)

    def test_cohort_changes_the_trace(self):
        _, small = run_params(population_config())
        _, large = run_params(population_config(cohort=12))
        assert not np.array_equal(small, large)

    def test_fixed_sampler_selects_prefix(self):
        config = population_config(sampling="fixed")
        setup = prepare_experiment(config)
        try:
            setup.simulation.prepare_round(0)
            ids = setup.simulation.global_worker_ids()
            np.testing.assert_array_equal(ids[: setup.simulation.cohort],
                                          np.arange(setup.simulation.cohort))
        finally:
            setup.simulation.close()


class TestStreamingPath:
    def test_streaming_engages_and_matches_in_memory(self, monkeypatch):
        config = population_config()
        _, streamed = run_params(config)

        # Same config with the streaming path force-disabled: the classic
        # stacked in-memory path must produce bitwise-identical parameters.
        streaming_rounds = []
        original = RoundPipeline._run_streaming_round

        def counting(self, round_index):
            streaming_rounds.append(round_index)
            return original(self, round_index)

        monkeypatch.setattr(RoundPipeline, "_run_streaming_round", counting)
        _, streamed_again = run_params(config)
        assert streaming_rounds, "streaming path never engaged"

        monkeypatch.setattr(
            RoundPipeline, "_streaming_eligible", lambda self, round_index: False
        )
        _, in_memory = run_params(config)
        np.testing.assert_array_equal(streamed, streamed_again)
        np.testing.assert_array_equal(streamed, in_memory)

    def test_streaming_matches_in_memory_with_protocol_attack(self, monkeypatch):
        # A protocol-following (data poisoning) attack keeps the streaming
        # path eligible: the Byzantine pool streams its blocks too.
        config = population_config(
            byzantine_fraction=0.25, attack="label_flip", cohort=10
        )
        _, streamed = run_params(config)
        monkeypatch.setattr(
            RoundPipeline, "_streaming_eligible", lambda self, round_index: False
        )
        _, in_memory = run_params(config)
        np.testing.assert_array_equal(streamed, in_memory)


class TestSamplerResume:
    def test_snapshot_records_sampler_state(self, tmp_path):
        config = population_config()
        run_params(config, tmp_path=tmp_path)
        snapshots = sorted(tmp_path.glob("round_*.state.npz"))
        assert snapshots
        state = load_round_state(snapshots[-1])
        assert state.sampler_state is not None
        assert state.sampler_state["rounds_drawn"] > 0

    def test_resume_mid_schedule_is_bitwise_identical(self, tmp_path):
        config = population_config(byzantine_fraction=0.25, attack="label_flip")
        history, parameters = run_params(config, tmp_path=tmp_path)
        snapshots = sorted(tmp_path.glob("round_*.state.npz"))
        assert len(snapshots) >= 3
        middle = snapshots[len(snapshots) // 2]
        resumed_history, resumed = run_params(config, resume_from=middle)
        np.testing.assert_array_equal(parameters, resumed)
        # The resumed tail of the history matches the uninterrupted run.
        state = load_round_state(middle)
        for key, series in resumed_history.items():
            full = history[key]
            assert series == full[len(full) - len(series):], key
        assert state.sampler_state["rounds_drawn"] == state.round_index + 1


class TestFaultyPopulationRounds:
    CONFIG = dict(
        byzantine_fraction=0.25,
        attack="label_flip",
        faults="chaos",
        faults_kwargs={"seed": 11},
        min_quorum=1,
    )

    def test_faults_compose_with_population_mode(self):
        result = run_experiment(population_config(**self.CONFIG))
        assert np.isfinite(result.final_accuracy)

    def test_faulty_serial_vs_threaded_bitwise(self):
        config = population_config(**self.CONFIG)
        _, serial = run_params(config)
        _, threaded = run_params(
            config.replace(backend="threaded", backend_kwargs={"max_workers": 2})
        )
        np.testing.assert_array_equal(serial, threaded)

    def test_faulty_resume_replays_identical_trace(self, tmp_path):
        config = population_config(**self.CONFIG)
        _, parameters = run_params(config, tmp_path=tmp_path)
        snapshots = sorted(tmp_path.glob("round_*.state.npz"))
        middle = snapshots[len(snapshots) // 2]
        _, resumed = run_params(config, resume_from=middle)
        np.testing.assert_array_equal(parameters, resumed)


class TestRemoteTrace:
    def test_subsampling_trace_serial_vs_remote_bitwise(self):
        from tests.federated.test_service import start_worker_thread

        config = population_config(byzantine_fraction=0.25, attack="label_flip")
        serial_history, serial_params = run_params(config)

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        threads = [
            start_worker_thread(port, name=f"w{i}", reconnect_timeout=30.0)
            for i in range(2)
        ]
        remote_history, remote_params = run_params(config.replace(
            backend="remote",
            backend_kwargs={
                "port": port, "max_workers": 2, "worker_timeout": 30.0,
            },
        ))
        for thread, codes in threads:
            thread.join(timeout=15.0)
            assert codes == [0]
        np.testing.assert_array_equal(serial_params, remote_params)
        assert serial_history == remote_history

"""Tests for seeded fault injection, retry/quorum execution and partial cohorts."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.byzantine.lmp import LocalModelPoisoningAttack
from repro.core.config import DPConfig, FaultsConfig, ProtocolConfig
from repro.core.protocol import TwoStageAggregator
from repro.data.auxiliary import sample_auxiliary
from repro.data.partition import partition_iid
from repro.data.synthetic import make_classification
from repro.defenses.mean import MeanAggregator
from repro.federated.backends import (
    RetryPolicy,
    SerialBackend,
    TaskFailure,
    TransientTaskError,
    build_backend,
)
from repro.federated.faults import (
    FAULTS,
    BYZANTINE_SCOPE,
    HONEST_SCOPE,
    ChaosFaults,
    ChurnFaults,
    CrashFaults,
    DropoutFaults,
    FaultModel,
    NoFaults,
    QuorumError,
    ReportFaultPlan,
    StragglerFaults,
    available_faults,
    build_faults,
    resolve_quorum,
    validate_quorum,
)
from repro.federated.pipeline import MetricsWriter, read_metrics
from repro.federated.simulation import FederatedSimulation, SimulationSettings
from repro.nn.layers import Linear
from repro.nn.network import Sequential


def build_simulation(
    n_honest: int = 6,
    n_byzantine: int = 0,
    attack=None,
    aggregator=None,
    sigma: float = 0.5,
    total_rounds: int = 4,
    gamma: float = 0.5,
    seed: int = 0,
    **kwargs,
) -> FederatedSimulation:
    rng = np.random.default_rng(seed)
    data = make_classification(240, 8, 3, class_separation=4.0, within_class_std=0.6,
                               nonlinear=False, rng=rng, name="faults")
    test = make_classification(90, 8, 3, class_separation=4.0, within_class_std=0.6,
                               nonlinear=False, rng=rng, name="faults_test")
    shards = partition_iid(data, n_honest, rng)
    auxiliary = sample_auxiliary(test, per_class=2, rng=rng)
    model = Sequential([Linear(8, 3, rng)])
    settings = SimulationSettings(
        total_rounds=total_rounds, learning_rate=0.5, gamma=gamma, eval_every=2
    )
    return FederatedSimulation(
        model=model,
        honest_datasets=shards,
        n_byzantine=n_byzantine,
        attack=attack,
        aggregator=aggregator if aggregator is not None else MeanAggregator(),
        dp_config=DPConfig(batch_size=8, sigma=sigma),
        auxiliary=auxiliary,
        test_dataset=test,
        settings=settings,
        seed=seed,
        **kwargs,
    )


def two_stage(gamma: float = 0.5) -> TwoStageAggregator:
    return TwoStageAggregator(ProtocolConfig(gamma=gamma))


class AllButOneDrop(FaultModel):  # repro-lint: disable=REP004 -- test double, constructed directly
    """Deterministic test model: every worker except index 0 drops out."""

    def report_faults(self, round_index: int, n_workers: int) -> ReportFaultPlan:
        dropped = np.ones(n_workers, dtype=bool)
        dropped[0] = False
        return ReportFaultPlan(dropped=dropped, late=np.zeros(n_workers, dtype=bool))


class AllDrop(FaultModel):  # repro-lint: disable=REP004 -- test double, constructed directly
    """Deterministic test model: the whole cohort drops out every round."""

    def report_faults(self, round_index: int, n_workers: int) -> ReportFaultPlan:
        return ReportFaultPlan(
            dropped=np.ones(n_workers, dtype=bool),
            late=np.zeros(n_workers, dtype=bool),
        )


# --------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------- #
class TestRegistry:
    def test_builtin_models_registered(self):
        names = available_faults()
        for expected in ("none", "dropout", "straggler", "crash", "churn", "chaos"):
            assert expected in names

    def test_describe_rows_have_fault_kind(self):
        rows = FAULTS.describe()
        assert rows and all(row["kind"] == "fault" for row in rows)

    def test_build_faults_injects_default_seed(self):
        model = build_faults("dropout", default_seed=7)
        assert isinstance(model, DropoutFaults)
        assert model.seed == 7

    def test_explicit_seed_beats_default(self):
        model = build_faults("dropout", default_seed=7, seed=3)
        assert model.seed == 3

    def test_none_spec_builds_inactive_model(self):
        model = build_faults(None)
        assert isinstance(model, NoFaults)
        assert not model.is_active

    def test_instance_passthrough(self):
        instance = DropoutFaults(rate=0.3)
        assert build_faults(instance) is instance

    def test_instance_with_kwargs_rejected(self):
        with pytest.raises(TypeError):
            build_faults(DropoutFaults(), rate=0.5)

    def test_custom_model_via_public_registry(self):
        @FAULTS.register("test_blackout", summary="test model", replace=True)
        class Blackout(FaultModel):
            pass

        try:
            assert isinstance(build_faults("test_blackout"), Blackout)
        finally:
            FAULTS.unregister("test_blackout")


# --------------------------------------------------------------------- #
# quorum primitives
# --------------------------------------------------------------------- #
class TestQuorum:
    @pytest.mark.parametrize("bad", [True, False, "3", None])
    def test_non_numeric_quorum_rejected(self, bad):
        with pytest.raises(TypeError):
            validate_quorum(bad)

    @pytest.mark.parametrize("bad", [0, -1, 0.0, -0.5, 1.5])
    def test_out_of_range_quorum_rejected(self, bad):
        with pytest.raises(ValueError):
            validate_quorum(bad)

    def test_integer_quorum_is_absolute(self):
        assert resolve_quorum(3, expected=10) == 3
        assert resolve_quorum(3, expected=2) == 3

    def test_fractional_quorum_scales_with_population(self):
        assert resolve_quorum(0.5, expected=10) == 5
        assert resolve_quorum(0.25, expected=10) == 3  # ceil(2.5)
        assert resolve_quorum(0.01, expected=10) == 1

    def test_error_names_round_and_survivors(self):
        error = QuorumError(round_index=7, survivors=2, required=5)
        assert "round 7" in str(error)
        assert "2" in str(error) and "5" in str(error)
        assert error.round_index == 7


# --------------------------------------------------------------------- #
# retry policy + resilient mapping
# --------------------------------------------------------------------- #
class TestRetryPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"backoff_base": -1.0},
            {"backoff_jitter": -0.1},
            {"timeout": 0.0},
        ],
    )
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_no_backoff_means_zero_delay(self):
        policy = RetryPolicy(max_attempts=5)
        assert policy.delay(index=0, attempt=3) == 0.0

    def test_exponential_backoff_doubles(self):
        policy = RetryPolicy(backoff_base=0.5)
        assert policy.delay(0, 1) == pytest.approx(0.5)
        assert policy.delay(0, 2) == pytest.approx(1.0)
        assert policy.delay(0, 3) == pytest.approx(2.0)

    def test_jitter_is_deterministic(self):
        policy = RetryPolicy(backoff_base=0.5, backoff_jitter=0.3, seed=11)
        again = RetryPolicy(backoff_base=0.5, backoff_jitter=0.3, seed=11)
        assert policy.delay(2, 1) == again.delay(2, 1)
        assert policy.delay(2, 1) != policy.delay(3, 1)


class _FlakyCalls:
    """Callable failing the first ``failures[item]`` invocations per item."""

    def __init__(self, failures: dict[int, int]):
        self.remaining = dict(failures)
        self.calls = 0

    def __call__(self, item: int) -> int:
        self.calls += 1
        if self.remaining.get(item, 0) > 0:
            self.remaining[item] -= 1
            raise TransientTaskError(f"item {item} failed")
        return item * 10


class TestMapResilient:
    def test_all_succeed_matches_map_ordered(self):
        backend = SerialBackend()
        results = backend.map_resilient(lambda x: x * 2, [1, 2, 3])
        assert results == [2, 4, 6]

    def test_retries_then_succeeds(self):
        backend = SerialBackend()
        fn = _FlakyCalls({1: 2})
        results = backend.map_resilient(fn, [0, 1, 2], RetryPolicy(max_attempts=3))
        assert results == [0, 10, 20]
        assert fn.calls == 5  # 3 items + 2 retries

    def test_permanent_failure_fills_ordered_slot(self):
        backend = SerialBackend()
        fn = _FlakyCalls({1: 99})
        results = backend.map_resilient(fn, [0, 1, 2], RetryPolicy(max_attempts=2))
        assert results[0] == 0 and results[2] == 20
        failure = results[1]
        assert isinstance(failure, TaskFailure)
        assert failure.index == 1
        assert failure.attempts == 2
        assert "item 1" in failure.error

    def test_non_transient_error_propagates(self):
        backend = SerialBackend()

        def boom(item):
            raise RuntimeError("not transient")

        with pytest.raises(RuntimeError, match="not transient"):
            backend.map_resilient(boom, [1])

    def test_leased_resources_path(self):
        backend = build_backend("threaded", max_workers=2)
        try:
            fn = _FlakyCalls({2: 1})
            seen = []

            def leased(resource, item):
                seen.append(resource)
                return fn(item)

            results = backend.map_resilient(
                leased, [1, 2, 3], RetryPolicy(max_attempts=3), resources=["a", "b"]
            )
            assert results == [10, 20, 30]
            assert set(seen) <= {"a", "b"}
        finally:
            backend.shutdown()


# --------------------------------------------------------------------- #
# fault model draws
# --------------------------------------------------------------------- #
class TestFaultModelDraws:
    def test_same_seed_same_trace(self):
        one = ChaosFaults(dropout=0.3, crash=0.3, seed=5)
        two = ChaosFaults(dropout=0.3, crash=0.3, seed=5)
        for round_index in range(6):
            a, b = one.report_faults(round_index, 12), two.report_faults(round_index, 12)
            np.testing.assert_array_equal(a.dropped, b.dropped)
            np.testing.assert_array_equal(a.late, b.late)
            np.testing.assert_array_equal(
                one.crash_failures(round_index, HONEST_SCOPE, 4),
                two.crash_failures(round_index, HONEST_SCOPE, 4),
            )

    def test_different_seeds_differ(self):
        traces = [
            np.concatenate([
                DropoutFaults(rate=0.5, seed=seed).report_faults(r, 16).dropped
                for r in range(4)
            ])
            for seed in (1, 2)
        ]
        assert not np.array_equal(traces[0], traces[1])

    def test_scopes_draw_independent_streams(self):
        model = CrashFaults(rate=0.9, max_failures=3, seed=3)
        honest = model.crash_failures(0, HONEST_SCOPE, 64)
        byzantine = model.crash_failures(0, BYZANTINE_SCOPE, 64)
        assert not np.array_equal(honest, byzantine)

    def test_dropout_rate_extremes(self):
        assert not DropoutFaults(rate=0.0).report_faults(0, 20).dropped.any()
        assert DropoutFaults(rate=1.0).report_faults(0, 20).dropped.all()

    def test_crash_failures_bounded_by_max(self):
        failures = CrashFaults(rate=1.0, max_failures=2, seed=1).crash_failures(
            3, HONEST_SCOPE, 50
        )
        assert failures.dtype == np.int64
        assert failures.min() >= 1 and failures.max() <= 2

    def test_churn_schedule_is_periodic(self):
        model = ChurnFaults(rate=1.0, away=2, period=4, seed=9)
        masks = [model.report_faults(r, 10).dropped for r in range(8)]
        for r in range(4):
            np.testing.assert_array_equal(masks[r], masks[r + 4])
        # every worker churns at rate 1 and is away `away` of `period` rounds
        away_counts = np.sum(masks[:4], axis=0)
        np.testing.assert_array_equal(away_counts, np.full(10, 2))

    def test_straggler_buffer_mode_flags_late(self):
        plan = StragglerFaults(rate=1.0, mode="buffer", seed=2).report_faults(0, 8)
        assert plan.late.all()
        assert plan.buffer_late
        assert not plan.dropped.any()

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            DropoutFaults(seed=-1)


# --------------------------------------------------------------------- #
# faulty training (integration)
# --------------------------------------------------------------------- #
class TestFaultyTraining:
    def test_all_dropped_raises_quorum_error_not_shape_error(self):
        simulation = build_simulation(faults=AllDrop())
        with pytest.raises(QuorumError, match="round 0"):
            simulation.run()

    def test_single_survivor_round_completes(self):
        simulation = build_simulation(faults=AllButOneDrop())
        history = simulation.run()
        assert history.final_accuracy >= 0.0
        assert history.faults
        assert all(entry["fault_survivors"] == 1.0 for entry in history.faults)

    def test_fractional_quorum_violation(self):
        simulation = build_simulation(faults=AllButOneDrop(), min_quorum=0.5)
        with pytest.raises(QuorumError) as excinfo:
            simulation.run()
        assert excinfo.value.survivors == 1
        assert excinfo.value.required == 3

    def test_zero_rate_fault_path_matches_reference(self):
        # An *active* dropout model at rate 0 exercises the whole fault
        # path (survivor ids, partial-cohort aggregation) but loses no
        # worker: the run must be bitwise identical to the "none" model.
        reference = build_simulation(
            n_byzantine=2, attack=LocalModelPoisoningAttack(),
            aggregator=two_stage(), faults="none", seed=3,
        )
        faulty = build_simulation(
            n_byzantine=2, attack=LocalModelPoisoningAttack(),
            aggregator=two_stage(), faults=DropoutFaults(rate=0.0), seed=3,
        )
        assert faulty.fault_model.is_active
        ref_history = reference.run()
        faulty_history = faulty.run()
        assert faulty_history.test_accuracy == ref_history.test_accuracy
        assert (
            faulty_history.byzantine_selected_fraction
            == ref_history.byzantine_selected_fraction
        )
        np.testing.assert_array_equal(
            faulty.model.get_flat_parameters(),
            reference.model.get_flat_parameters(),
        )

    def test_retry_then_succeed_is_bitwise_identical_to_never_failing(self):
        # Crashes recover within the retry budget, so the realised uploads
        # -- and therefore the whole run -- must match the fault-free one.
        reference = build_simulation(aggregator=two_stage(), faults="none", seed=4)
        crashing = build_simulation(
            aggregator=two_stage(),
            faults=CrashFaults(rate=0.8, max_failures=2, seed=4),
            retry={"max_attempts": 3},
            shard_size=2,
            seed=4,
        )
        reference_with_shards = build_simulation(
            aggregator=two_stage(), faults="none", shard_size=2, seed=4
        )
        ref_history = reference_with_shards.run()
        crash_history = crashing.run()
        assert crash_history.test_accuracy == ref_history.test_accuracy
        np.testing.assert_array_equal(
            crashing.model.get_flat_parameters(),
            reference_with_shards.model.get_flat_parameters(),
        )
        # the reference without sharding agrees too (sharding is neutral)
        assert reference.run().test_accuracy == ref_history.test_accuracy
        # and the crashes really happened: retries were recorded
        assert sum(entry["fault_retried"] for entry in crash_history.faults) > 0

    def test_exhausted_retries_drop_the_shard_workers(self):
        simulation = build_simulation(
            faults=CrashFaults(rate=1.0, max_failures=5, seed=2),
            retry={"max_attempts": 2},
            shard_size=3,
        )
        with pytest.raises(QuorumError):
            # every shard fails past the retry budget -> empty cohort
            simulation.run()

    def test_straggler_buffer_delivers_next_round(self):
        simulation = build_simulation(
            faults=StragglerFaults(rate=0.4, mode="buffer", seed=6),
            total_rounds=6,
        )
        history = simulation.run()
        buffered = sum(entry["fault_buffered"] for entry in history.faults)
        assert buffered > 0
        assert history.final_accuracy >= 0.0

    def test_dropout_under_attack_with_two_stage(self):
        simulation = build_simulation(
            n_byzantine=2,
            attack=LocalModelPoisoningAttack(),
            aggregator=two_stage(),
            faults=DropoutFaults(rate=0.3, seed=1),
            min_quorum=2,
            total_rounds=5,
        )
        history = simulation.run()
        assert history.faults
        dropped = sum(entry["fault_dropped"] for entry in history.faults)
        assert dropped > 0

    def test_history_dict_contains_faults_only_when_faulty(self):
        clean = build_simulation(faults="none").run()
        assert set(clean.as_dict()) == {
            "rounds", "test_accuracy", "byzantine_selected_fraction",
        }
        faulty = build_simulation(faults=DropoutFaults(rate=0.5, seed=8)).run()
        assert "faults" in faulty.as_dict()

    def test_faults_config_carries_quorum_and_retry(self):
        config = FaultsConfig(
            name="crash",
            min_quorum=2,
            options={"rate": 0.5, "max_failures": 1},
            retry={"max_attempts": 4},
        )
        simulation = build_simulation(faults=config)
        assert isinstance(simulation.fault_model, CrashFaults)
        assert simulation.min_quorum == 2
        assert simulation.retry_policy.max_attempts == 4
        assert simulation.server.min_quorum == 2


class TestCrossBackendDeterminism:
    @pytest.mark.parametrize("backend", ["threaded", "process"])
    def test_chaos_trace_and_accuracy_match_serial(self, backend):
        def run(backend_name):
            simulation = build_simulation(
                aggregator=two_stage(),
                faults=ChaosFaults(dropout=0.2, crash=0.4, seed=5),
                shard_size=2,
                backend=backend_name,
                total_rounds=3,
                seed=5,
            )
            try:
                history = simulation.run()
            finally:
                simulation.close()
            return history.as_dict(), simulation.model.get_flat_parameters()

        serial_history, serial_params = run("serial")
        other_history, other_params = run(backend)
        assert other_history == serial_history
        np.testing.assert_array_equal(other_params, serial_params)


# --------------------------------------------------------------------- #
# metrics writer
# --------------------------------------------------------------------- #
class TestMetricsWriter:
    def test_streams_one_json_line_per_round(self, tmp_path):
        path = tmp_path / "metrics" / "rounds.jsonl"
        simulation = build_simulation(faults=DropoutFaults(rate=0.3, seed=1))
        with MetricsWriter(path) as writer:
            simulation.run([writer])
        lines = path.read_text().strip().splitlines()
        assert len(lines) == simulation.settings.total_rounds
        assert writer.lines_written == len(lines)
        records = [json.loads(line) for line in lines]
        assert [r["round"] for r in records] == list(range(len(records)))
        assert all("fault_survivors" in r for r in records)
        # evaluation rounds carry the accuracy, others null
        assert any(r["accuracy"] is not None for r in records)

    def test_close_is_idempotent(self, tmp_path):
        writer = MetricsWriter(tmp_path / "m.jsonl")
        writer.close()
        writer.close()
        assert writer.lines_written == 0

    def test_append_mode_accumulates_across_resumed_runs(self, tmp_path):
        # A resumed run reopens the same file in append mode: the JSONL
        # accumulates one contiguous record of the whole trajectory.
        path = tmp_path / "m.jsonl"
        with MetricsWriter(path) as writer:
            build_simulation().run([writer])
        first = len(path.read_text().splitlines())
        assert first > 0
        with MetricsWriter(path, append=True) as writer:
            build_simulation().run([writer])
        assert len(path.read_text().splitlines()) == 2 * first

    def test_default_mode_overwrites(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text('{"round": 99}\n')
        with MetricsWriter(path) as writer:
            build_simulation().run([writer])
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records[0]["round"] == 0

    def test_fsync_knob_still_writes_valid_records(self, tmp_path):
        path = tmp_path / "m.jsonl"
        with MetricsWriter(path, fsync=True) as writer:
            build_simulation().run([writer])
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["round"] for r in records] == list(range(len(records)))


class TestReadMetrics:
    def write(self, path, lines):
        path.write_text("".join(lines))
        return path

    def test_reads_writer_output(self, tmp_path):
        path = tmp_path / "m.jsonl"
        with MetricsWriter(path) as writer:
            build_simulation().run([writer])
        records = read_metrics(path)
        assert len(records) == writer.lines_written
        assert [r["round"] for r in records] == list(range(len(records)))

    def test_tolerates_torn_final_line(self, tmp_path):
        # A kill -9 mid-write leaves at most one partial trailing line.
        path = self.write(tmp_path / "m.jsonl", [
            '{"round": 0, "accuracy": null}\n',
            '{"round": 1, "accuracy": 0.5}\n',
            '{"round": 2, "accu',
        ])
        records = read_metrics(path)
        assert [r["round"] for r in records] == [0, 1]

    def test_trailing_blank_lines_are_ignored(self, tmp_path):
        path = self.write(tmp_path / "m.jsonl", [
            '{"round": 0}\n', "\n", "\n",
        ])
        assert read_metrics(path) == [{"round": 0}]

    def test_malformed_interior_line_raises_with_line_number(self, tmp_path):
        path = self.write(tmp_path / "m.jsonl", [
            '{"round": 0}\n', "garbage\n", '{"round": 2}\n',
        ])
        with pytest.raises(ValueError, match="line 2"):
            read_metrics(path)

    def test_blank_interior_line_raises(self, tmp_path):
        path = self.write(tmp_path / "m.jsonl", [
            '{"round": 0}\n', "\n", '{"round": 2}\n',
        ])
        with pytest.raises(ValueError, match="blank line 2"):
            read_metrics(path)

"""Client compute engines: registry, equivalence, sharding, memory bounds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DPConfig, EngineConfig
from repro.core.dp_protocol import bounding_factors
from repro.data.synthetic import make_classification
from repro.federated.engines import (
    ENGINES,
    ClientEngine,
    GhostNormEngine,
    MaterializedEngine,
    available_engines,
    build_engine,
    pairwise_gradient_gram,
)
from repro.federated.worker import WorkerPool
from repro.nn.layers import ELU, Linear
from repro.nn.network import Sequential
from repro.privacy.mechanisms import clip_gradients, normalize_gradients
from tests.helpers import make_model_and_data


def make_shards(n_workers, seed=0, n_features=8, n_classes=3, per_worker=40):
    rng = np.random.default_rng(seed)
    data = make_classification(
        n_samples=per_worker * n_workers,
        n_features=n_features,
        n_classes=n_classes,
        nonlinear=False,
        rng=rng,
        name="engines",
    )
    return [
        data.subset(np.arange(i * per_worker, (i + 1) * per_worker))
        for i in range(n_workers)
    ]


def make_pool(shards, config, seed_base=100, **kwargs):
    return WorkerPool(
        shards,
        config,
        [np.random.default_rng(seed_base + i) for i in range(len(shards))],
        **kwargs,
    )


class TestEngineRegistry:
    def test_builtin_engines_registered(self):
        assert "materialized" in available_engines()
        assert "ghost_norm" in available_engines()

    def test_aliases_resolve(self):
        assert isinstance(build_engine("stacked"), MaterializedEngine)
        assert isinstance(build_engine("ghost"), GhostNormEngine)

    def test_none_builds_default(self):
        assert isinstance(build_engine(None), MaterializedEngine)

    def test_instance_passes_through(self):
        engine = GhostNormEngine()
        assert build_engine(engine) is engine

    def test_instance_with_kwargs_rejected(self):
        with pytest.raises(TypeError):
            build_engine(MaterializedEngine(), foo=1)

    def test_engine_config_resolves(self):
        engine = build_engine(EngineConfig(name="ghost_norm"))
        assert isinstance(engine, GhostNormEngine)

    def test_engine_config_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(shard_size=0)
        with pytest.raises(ValueError):
            EngineConfig(name="")

    def test_registered_in_public_registry(self):
        assert ENGINES.names() == sorted(available_engines())


class TestGhostNormEquivalence:
    @pytest.mark.parametrize("hidden", [None, 6], ids=["linear", "mlp"])
    @pytest.mark.parametrize(
        "config",
        [
            DPConfig(batch_size=8, sigma=0.9, momentum=0.3),
            DPConfig(batch_size=4, sigma=0.5, momentum=0.0),
            DPConfig(batch_size=4, sigma=0.7, momentum=0.2, bounding="clip", clip_norm=0.8),
            DPConfig(batch_size=8, sigma=0.0, momentum=0.1),
        ],
        ids=["normalize", "no-momentum", "clip", "no-noise"],
    )
    def test_uploads_match_materialized(self, hidden, config):
        """The tolerance gate: ghost == materialized to rtol 1e-9 over rounds."""
        model, _ = make_model_and_data(seed=2, hidden=hidden)
        shards = make_shards(5, seed=3)
        materialized = make_pool(shards, config, engine="materialized")
        ghost = make_pool(shards, config, engine="ghost_norm")
        for round_index in range(4):
            np.testing.assert_allclose(
                ghost.compute_uploads(model),
                materialized.compute_uploads(model),
                rtol=1e-9,
                atol=1e-12,
                err_msg=f"round {round_index}",
            )

    def test_never_materializes_per_example_gradients(self):
        """The ghost path must not fall back to the (n*b, d) gradient path."""
        model, _ = make_model_and_data(seed=1)
        shards = make_shards(4, seed=4)
        pool = make_pool(shards, DPConfig(batch_size=8, sigma=1.0), engine="ghost_norm")

        def forbidden(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("ghost engine materialised per-example gradients")

        model.per_example_gradients = forbidden
        uploads = pool.compute_uploads(model)
        assert uploads.shape == (4, model.num_parameters)
        for layer in model.layers:
            assert layer.per_example_grads is None

    def test_rejects_unsupported_layers(self):
        """A parametrised layer without factor capture fails loudly."""

        class OpaqueLinear(Linear):
            supports_grad_factors = False

        model = Sequential([OpaqueLinear(8, 3, np.random.default_rng(0))])
        shards = make_shards(2, seed=5)
        pool = make_pool(shards, DPConfig(batch_size=4, sigma=1.0), engine="ghost")
        with pytest.raises(RuntimeError, match="OpaqueLinear"):
            pool.compute_uploads(model)

    def test_momentum_state_identical_across_engines(self):
        """Line 11 overwrite: both engines leave the same rank-1 state."""
        model, _ = make_model_and_data(seed=7)
        config = DPConfig(batch_size=4, sigma=0.6, momentum=0.4)
        shards = make_shards(3, seed=8)
        materialized = make_pool(shards, config, engine="materialized")
        ghost = make_pool(shards, config, engine="ghost_norm")
        for _ in range(3):
            materialized.compute_uploads(model)
            ghost.compute_uploads(model)
        np.testing.assert_allclose(
            ghost.state.slot_momentum,
            materialized.state.slot_momentum,
            rtol=1e-9,
            atol=1e-12,
        )


class TestPairwiseGradientGram:
    def test_gram_diagonal_matches_materialized_norms(self):
        """diag((X X^T + 1) (.) (D D^T)) == per-example squared norms."""
        model, _ = make_model_and_data(seed=3, hidden=5)
        shards = make_shards(3, seed=6)
        batch = 4
        rng = np.random.default_rng(0)
        features = np.concatenate(
            [shard.features[rng.integers(0, len(shard), batch)] for shard in shards]
        )
        labels = np.concatenate(
            [shard.labels[rng.integers(0, len(shard), batch)] for shard in shards]
        )
        gram = pairwise_gradient_gram(model, features, labels, n_workers=3)
        _, per_example = model.per_example_gradients(features, labels)
        expected = np.einsum("rd,rd->r", per_example, per_example).reshape(3, batch)
        np.testing.assert_allclose(
            np.diagonal(gram, axis1=1, axis2=2), expected, rtol=1e-9, atol=1e-12
        )

    def test_gram_off_diagonal_matches_pairwise_products(self):
        model, _ = make_model_and_data(seed=9)
        shards = make_shards(2, seed=10)
        batch = 3
        rng = np.random.default_rng(1)
        features = np.concatenate(
            [shard.features[rng.integers(0, len(shard), batch)] for shard in shards]
        )
        labels = np.concatenate(
            [shard.labels[rng.integers(0, len(shard), batch)] for shard in shards]
        )
        gram = pairwise_gradient_gram(model, features, labels, n_workers=2)
        _, per_example = model.per_example_gradients(features, labels)
        stacked = per_example.reshape(2, batch, -1)
        expected = np.matmul(stacked, stacked.swapaxes(1, 2))
        np.testing.assert_allclose(gram, expected, rtol=1e-9, atol=1e-12)


class TestBoundingFactors:
    def test_normalize_matches_mechanism(self):
        rng = np.random.default_rng(0)
        vectors = rng.normal(size=(6, 9))
        vectors[2] = 0.0  # zero slot: normalise maps it to zero
        config = DPConfig(batch_size=6, bounding="normalize")
        norms = np.linalg.norm(vectors, axis=-1)
        scaled = vectors * bounding_factors(norms, config)[:, None]
        np.testing.assert_allclose(
            scaled, normalize_gradients(vectors), rtol=0, atol=0
        )

    def test_clip_matches_mechanism(self):
        rng = np.random.default_rng(1)
        vectors = rng.normal(size=(5, 7)) * 3.0
        config = DPConfig(batch_size=5, bounding="clip", clip_norm=1.3)
        norms = np.linalg.norm(vectors, axis=-1)
        scaled = vectors * bounding_factors(norms, config)[:, None]
        np.testing.assert_allclose(
            scaled, clip_gradients(vectors, 1.3), rtol=1e-15, atol=0
        )


class TestShardedPool:
    @pytest.mark.parametrize("engine", ["materialized", "ghost_norm"])
    @pytest.mark.parametrize("shard_size", [1, 2, 3, 10])
    def test_sharded_bitwise_identical_to_unsharded(self, engine, shard_size):
        """The regression gate: sharding never changes a single bit."""
        model, _ = make_model_and_data(seed=2)
        shards = make_shards(7, seed=3)
        config = DPConfig(batch_size=4, sigma=0.8, momentum=0.2)
        unsharded = make_pool(shards, config, engine=engine)
        sharded = make_pool(shards, config, engine=engine, shard_size=shard_size)
        for round_index in range(3):
            np.testing.assert_array_equal(
                sharded.compute_uploads(model),
                unsharded.compute_uploads(model),
                err_msg=f"round {round_index}",
            )

    def test_shard_bounds_cover_pool(self):
        shards = make_shards(7)
        pool = make_pool(shards, DPConfig(batch_size=4), shard_size=3)
        assert pool.n_shards == 3
        assert pool.shard_bounds == [(0, 3), (3, 6), (6, 7)]

    def test_unsharded_is_one_shard(self):
        shards = make_shards(5)
        pool = make_pool(shards, DPConfig(batch_size=4))
        assert pool.n_shards == 1
        assert pool.shard_bounds == [(0, 5)]

    def test_rejects_nonpositive_shard_size(self):
        shards = make_shards(2)
        with pytest.raises(ValueError):
            make_pool(shards, DPConfig(batch_size=4), shard_size=0)

    def test_sampling_scratch_bounded_by_shard(self):
        """Peak pool scratch is sized by the shard, not the population."""
        model, _ = make_model_and_data(seed=2)
        config = DPConfig(batch_size=4, sigma=1.0)
        shards = make_shards(8)
        pool = make_pool(shards, config, shard_size=2)
        pool.compute_uploads(model)
        assert pool._primary._features.shape[0] == 2 * config.batch_size
        assert isinstance(pool.engine, MaterializedEngine)
        assert pool.engine._gradients.shape == (
            2 * config.batch_size,
            model.num_parameters,
        )

    def test_engine_config_shard_size_used(self):
        shards = make_shards(6)
        pool = make_pool(
            shards,
            DPConfig(batch_size=4),
            engine=EngineConfig(name="materialized", shard_size=2),
        )
        assert pool.n_shards == 3

    def test_no_concatenated_data_copy(self):
        """The pool no longer holds a second copy of its shard data."""
        shards = make_shards(4)
        pool = make_pool(shards, DPConfig(batch_size=4))
        assert not hasattr(pool, "_all_features")
        assert not hasattr(pool, "_all_labels")


class TestCustomEngine:
    def test_registered_engine_runs_through_pool(self):
        calls = []

        @ENGINES.register("counting_demo", summary="test engine", replace=True)
        class CountingEngine(MaterializedEngine):
            def compute_uploads(self, model, features, labels, n_workers, *rest):
                calls.append(n_workers)
                return super().compute_uploads(
                    model, features, labels, n_workers, *rest
                )

        try:
            model, _ = make_model_and_data(seed=0)
            shards = make_shards(4)
            pool = make_pool(
                shards, DPConfig(batch_size=4, sigma=1.0),
                engine="counting_demo", shard_size=2,
            )
            uploads = pool.compute_uploads(model)
            assert uploads.shape == (4, model.num_parameters)
            assert calls == [2, 2]
            assert isinstance(pool.engine, ClientEngine)
        finally:
            ENGINES.unregister("counting_demo")

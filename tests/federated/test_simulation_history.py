"""Tests for the federated training loop and the history container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.byzantine.adaptive import AdaptiveAttack
from repro.byzantine.gaussian import GaussianAttack
from repro.byzantine.label_flip import LabelFlipAttack
from repro.byzantine.lmp import LocalModelPoisoningAttack
from repro.core.config import DPConfig, ProtocolConfig
from repro.core.protocol import TwoStageAggregator
from repro.data.partition import partition_iid
from repro.data.auxiliary import sample_auxiliary
from repro.data.synthetic import make_classification
from repro.defenses.mean import MeanAggregator
from repro.federated.history import TrainingHistory
from repro.federated.simulation import FederatedSimulation, SimulationSettings
from repro.nn.layers import ELU, Linear
from repro.nn.network import Sequential


def build_simulation(
    n_honest: int = 4,
    n_byzantine: int = 0,
    attack=None,
    aggregator=None,
    sigma: float = 0.5,
    total_rounds: int = 5,
    gamma: float = 0.5,
    seed: int = 0,
) -> FederatedSimulation:
    rng = np.random.default_rng(seed)
    data = make_classification(240, 8, 3, class_separation=4.0, within_class_std=0.6,
                               nonlinear=False, rng=rng, name="sim")
    test = make_classification(90, 8, 3, class_separation=4.0, within_class_std=0.6,
                               nonlinear=False, rng=rng, name="sim_test")
    shards = partition_iid(data, n_honest, rng)
    auxiliary = sample_auxiliary(test, per_class=2, rng=rng)
    model = Sequential([Linear(8, 32, rng), ELU(), Linear(32, 3, rng)])
    settings = SimulationSettings(
        total_rounds=total_rounds, learning_rate=0.5, gamma=gamma, eval_every=2
    )
    return FederatedSimulation(
        model=model,
        honest_datasets=shards,
        n_byzantine=n_byzantine,
        attack=attack,
        aggregator=aggregator if aggregator is not None else MeanAggregator(),
        dp_config=DPConfig(batch_size=8, sigma=sigma),
        auxiliary=auxiliary,
        test_dataset=test,
        settings=settings,
        seed=seed,
    )


class TestSimulationSettings:
    def test_valid_settings(self):
        settings = SimulationSettings(total_rounds=10, learning_rate=0.1)
        assert settings.gamma == 0.5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"total_rounds": 0, "learning_rate": 0.1},
            {"total_rounds": 10, "learning_rate": 0.0},
            {"total_rounds": 10, "learning_rate": 0.1, "gamma": 0.0},
            {"total_rounds": 10, "learning_rate": 0.1, "eval_every": 0},
        ],
    )
    def test_invalid_settings(self, kwargs):
        with pytest.raises(ValueError):
            SimulationSettings(**kwargs)


class TestConstruction:
    def test_requires_honest_workers(self):
        with pytest.raises(ValueError):
            build_simulation(n_honest=0)

    def test_requires_attack_when_byzantine_present(self):
        with pytest.raises(ValueError):
            build_simulation(n_byzantine=2, attack=None)

    def test_rejects_negative_byzantine(self):
        with pytest.raises(ValueError):
            build_simulation(n_byzantine=-1, attack=GaussianAttack())

    def test_worker_counts(self):
        simulation = build_simulation(n_honest=4, n_byzantine=3, attack=GaussianAttack())
        assert simulation.n_honest == 4
        assert simulation.n_byzantine == 3
        assert simulation.n_workers == 7

    def test_protocol_following_attack_creates_byzantine_workers(self):
        simulation = build_simulation(n_honest=4, n_byzantine=3, attack=LabelFlipAttack())
        assert len(simulation.byzantine_workers) == 3

    def test_crafting_attack_creates_no_byzantine_workers(self):
        simulation = build_simulation(n_honest=4, n_byzantine=3, attack=GaussianAttack())
        assert len(simulation.byzantine_workers) == 0


class TestRounds:
    def test_run_round_returns_diagnostics(self):
        simulation = build_simulation()
        diagnostics = simulation.run_round(0)
        assert "byzantine_selected_fraction" in diagnostics

    def test_round_changes_model(self):
        simulation = build_simulation()
        before = simulation.model.get_flat_parameters().copy()
        simulation.run_round(0)
        assert not np.allclose(before, simulation.model.get_flat_parameters())

    def test_run_produces_history(self):
        simulation = build_simulation(total_rounds=6)
        history = simulation.run()
        assert len(history.rounds) >= 1
        assert history.rounds[-1] == 5  # final round always evaluated
        assert all(0.0 <= acc <= 1.0 for acc in history.test_accuracy)

    def test_eval_every_controls_history_length(self):
        simulation = build_simulation(total_rounds=6)
        history = simulation.run()
        # eval_every=2 over 6 rounds -> rounds 1, 3, 5
        assert history.rounds == [1, 3, 5]

    def test_label_flip_byzantine_uploads_shape(self):
        simulation = build_simulation(n_honest=4, n_byzantine=2, attack=LabelFlipAttack())
        honest = simulation._honest_uploads()  # noqa: SLF001 - exercising internals
        byzantine = simulation._byzantine_uploads(honest, round_index=0)  # noqa: SLF001
        assert byzantine.shape == (2, honest.shape[1])

    def test_lmp_byzantine_uploads_oppose_honest_sum(self):
        simulation = build_simulation(
            n_honest=4, n_byzantine=7, attack=LocalModelPoisoningAttack()
        )
        honest = simulation._honest_uploads()  # noqa: SLF001
        byzantine = simulation._byzantine_uploads(honest, round_index=0)  # noqa: SLF001
        total = honest.sum(axis=0) + byzantine.sum(axis=0)
        assert float(np.dot(total, honest.sum(axis=0))) < 0.0

    def test_dormant_adaptive_attack_copies_honest_uploads(self):
        attack = AdaptiveAttack(GaussianAttack(), ttbb=0.9)
        simulation = build_simulation(
            n_honest=4, n_byzantine=2, attack=attack, total_rounds=10
        )
        honest = simulation._honest_uploads()  # noqa: SLF001
        byzantine = simulation._byzantine_uploads(honest, round_index=0)  # noqa: SLF001
        honest_rows = {tuple(np.round(row, 9)) for row in honest}
        for row in byzantine:
            assert tuple(np.round(row, 9)) in honest_rows

    def test_no_byzantine_returns_empty_array(self):
        simulation = build_simulation(n_honest=3)
        honest = simulation._honest_uploads()  # noqa: SLF001
        byzantine = simulation._byzantine_uploads(honest, round_index=0)  # noqa: SLF001
        assert byzantine.shape == (0, honest.shape[1])

    def test_two_stage_aggregator_tracks_byzantine_selection(self):
        aggregator = TwoStageAggregator(ProtocolConfig(gamma=0.5))
        simulation = build_simulation(
            n_honest=4,
            n_byzantine=4,
            attack=LocalModelPoisoningAttack(),
            aggregator=aggregator,
            gamma=0.5,
            total_rounds=3,
        )
        diagnostics = simulation.run_round(0)
        assert 0.0 <= diagnostics["byzantine_selected_fraction"] <= 1.0

    def test_same_seed_reproducible(self):
        history_a = build_simulation(seed=11, total_rounds=4).run()
        history_b = build_simulation(seed=11, total_rounds=4).run()
        assert history_a.test_accuracy == history_b.test_accuracy

    def test_different_seeds_differ(self):
        history_a = build_simulation(seed=11, total_rounds=4, sigma=1.0).run()
        history_b = build_simulation(seed=12, total_rounds=4, sigma=1.0).run()
        assert history_a.test_accuracy != history_b.test_accuracy


class TestTrainingHistory:
    def test_record_and_final(self):
        history = TrainingHistory()
        history.record(0, 0.3)
        history.record(5, 0.7, byzantine_selected=0.1)
        assert history.final_accuracy == 0.7
        assert history.best_accuracy == 0.7
        assert history.byzantine_selected_fraction == [0.0, 0.1]

    def test_best_differs_from_final(self):
        history = TrainingHistory()
        history.record(0, 0.8)
        history.record(1, 0.6)
        assert history.best_accuracy == 0.8
        assert history.final_accuracy == 0.6

    def test_empty_history_raises(self):
        history = TrainingHistory()
        with pytest.raises(ValueError):
            _ = history.final_accuracy
        with pytest.raises(ValueError):
            _ = history.best_accuracy

    def test_as_dict_round_trip(self):
        history = TrainingHistory()
        history.record(2, 0.5, 0.25)
        data = history.as_dict()
        assert data == {
            "rounds": [2],
            "test_accuracy": [0.5],
            "byzantine_selected_fraction": [0.25],
        }

    def test_as_dict_returns_copies(self):
        history = TrainingHistory()
        history.record(0, 0.1)
        data = history.as_dict()
        data["rounds"].append(99)
        assert history.rounds == [0]

"""Tests for the parallel execution backends.

Covers the backend framework (registry, ordered reduction, lifecycle),
the worker-pool routing (threaded/process == serial bitwise, including
under adversarial shard completion orders), the auto-sharding of
parallel pools and the backend-routed chunked evaluation.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.config import BackendConfig, DPConfig
from repro.data.synthetic import make_classification
from repro.federated.backends import (
    BACKENDS,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadedBackend,
    available_backends,
    build_backend,
)
from repro.federated.worker import WorkerPool
from tests.helpers import make_model_and_data


def make_shards(n_workers, seed=0, n_features=8, n_classes=3, per_worker=40):
    rng = np.random.default_rng(seed)
    data = make_classification(
        n_samples=per_worker * n_workers,
        n_features=n_features,
        n_classes=n_classes,
        nonlinear=False,
        rng=rng,
        name="backend-pool",
    )
    return [
        data.subset(np.arange(i * per_worker, (i + 1) * per_worker))
        for i in range(n_workers)
    ]


def make_pool(shards, config, engine=None, shard_size=None, backend=None, seed=100):
    return WorkerPool(
        shards,
        config,
        [np.random.default_rng(seed + i) for i in range(len(shards))],
        engine=engine,
        shard_size=shard_size,
        backend=backend,
    )


class ReversedCompletionBackend(ExecutionBackend):  # repro-lint: disable=REP004 -- test double, constructed directly
    """Test double: tasks *complete* in reverse submission order.

    The reduction stays ordered, so a correctly written caller (results
    placed by index, per-worker streams) must be unaffected.
    """

    def __init__(self, max_workers: int = 4) -> None:
        self._max_workers = max_workers

    @property
    def max_workers(self) -> int:
        return self._max_workers

    def map_ordered(self, fn, items):
        items = list(items)
        results: list = [None] * len(items)
        for index in reversed(range(len(items))):
            results[index] = fn(items[index])
        return results


class TestBackendFramework:
    def test_builtin_backends_registered(self):
        assert {"serial", "threaded", "process"} <= set(available_backends())
        assert "threads" in BACKENDS.names(include_aliases=True)
        assert "processes" in BACKENDS.names(include_aliases=True)

    def test_serial_map_ordered(self):
        backend = SerialBackend()
        assert backend.map_ordered(lambda x: x * 2, [3, 1, 2]) == [6, 2, 4]
        assert backend.max_workers == 1
        assert backend.in_process

    def test_serial_accepts_and_ignores_max_workers(self):
        """Sweeps toggle only the backend name; --jobs must not explode."""
        assert SerialBackend(max_workers=4).max_workers == 1

    def test_threaded_map_preserves_submission_order(self):
        backend = ThreadedBackend(max_workers=4)
        try:
            barrier = threading.Barrier(4, timeout=10)

            def task(item):
                barrier.wait()  # all four run simultaneously
                return item * item

            assert backend.map_ordered(task, [1, 2, 3, 4]) == [1, 4, 9, 16]
        finally:
            backend.shutdown()

    def test_threaded_propagates_task_exception(self):
        backend = ThreadedBackend(max_workers=2)
        try:
            def task(item):
                if item == 2:
                    raise RuntimeError("boom")
                return item

            with pytest.raises(RuntimeError, match="boom"):
                backend.map_ordered(task, [1, 2, 3])
        finally:
            backend.shutdown()

    def test_backend_usable_after_shutdown(self):
        backend = ThreadedBackend(max_workers=2)
        assert backend.map_ordered(lambda x: x + 1, [1, 2]) == [2, 3]
        backend.shutdown()
        assert backend.map_ordered(lambda x: x + 1, [3]) == [4]
        backend.shutdown()

    def test_empty_items(self):
        backend = ThreadedBackend(max_workers=2)
        assert backend.map_ordered(lambda x: x, []) == []
        backend.shutdown()

    def test_rejects_nonpositive_max_workers(self):
        with pytest.raises(ValueError):
            ThreadedBackend(max_workers=0)
        with pytest.raises(ValueError):
            SerialBackend(max_workers=-1)

    def test_build_backend_default_is_serial(self):
        assert isinstance(build_backend(None), SerialBackend)
        assert isinstance(build_backend("serial"), SerialBackend)

    def test_build_backend_from_config(self):
        backend = build_backend(BackendConfig(name="threaded", max_workers=3))
        assert isinstance(backend, ThreadedBackend)
        assert backend.max_workers == 3

    def test_build_backend_config_options_win_over_max_workers(self):
        config = BackendConfig(
            name="threaded", max_workers=3, options={"max_workers": 2}
        )
        assert build_backend(config).max_workers == 2

    def test_build_backend_instance_passthrough(self):
        backend = ThreadedBackend(max_workers=2)
        assert build_backend(backend) is backend
        with pytest.raises(TypeError):
            build_backend(backend, max_workers=4)
        backend.shutdown()

    def test_backend_config_validation(self):
        with pytest.raises(ValueError):
            BackendConfig(name="")
        with pytest.raises(ValueError):
            BackendConfig(name="serial", max_workers=0)


class TestPoolBackends:
    """Threaded/process pools are bitwise identical to the serial path."""

    def assert_pool_matches_serial(self, backend, engine=None, rounds=3,
                                   shard_size=2, n_workers=6, batch=4):
        model, _ = make_model_and_data(seed=2)
        shards = make_shards(n_workers, seed=3)
        config = DPConfig(batch_size=batch, sigma=0.9, momentum=0.2)
        serial = make_pool(shards, config, engine=engine, shard_size=shard_size)
        parallel = make_pool(
            shards, config, engine=engine, shard_size=shard_size, backend=backend
        )
        try:
            for round_index in range(rounds):
                np.testing.assert_array_equal(
                    parallel.compute_uploads(model),
                    serial.compute_uploads(model),
                    err_msg=f"round {round_index}",
                )
        finally:
            parallel.backend.shutdown()

    def test_threaded_pool_bitwise_identical(self):
        self.assert_pool_matches_serial(ThreadedBackend(max_workers=3))

    def test_threaded_pool_bitwise_identical_ghost_engine(self):
        self.assert_pool_matches_serial(
            ThreadedBackend(max_workers=3), engine="ghost_norm"
        )

    def test_process_pool_bitwise_identical(self):
        self.assert_pool_matches_serial(ProcessBackend(max_workers=2), rounds=2)

    def test_process_pool_bitwise_identical_ghost_engine(self):
        self.assert_pool_matches_serial(
            ProcessBackend(max_workers=2), engine="ghost_norm", rounds=2
        )

    def test_reversed_completion_order_identical(self):
        """Shard results must not depend on which shard finishes first."""
        self.assert_pool_matches_serial(ReversedCompletionBackend())

    def test_interleaved_shard_completion(self):
        """All shards in flight simultaneously, released in reverse order."""
        model, _ = make_model_and_data(seed=5)
        shards = make_shards(8, seed=7)
        config = DPConfig(batch_size=4, sigma=1.0, momentum=0.1)

        class InterleavingBackend(ThreadedBackend):
            """Holds every task at a barrier, then staggers completion."""

            def map_ordered(self, fn, items):
                items = list(items)
                barrier = threading.Barrier(len(items), timeout=30)
                order = {id(item): rank for rank, item in enumerate(reversed(items))}
                release = threading.Condition()
                released = [0]

                def staggered(item):
                    result = fn(item)
                    barrier.wait()
                    with release:
                        release.wait_for(
                            lambda: released[0] >= order[id(item)], timeout=30
                        )
                        released[0] += 1
                        release.notify_all()
                    return result

                return super().map_ordered(staggered, items)

        backend = InterleavingBackend(max_workers=4)
        serial = make_pool(shards, config, shard_size=2)
        parallel = make_pool(shards, config, shard_size=2, backend=backend)
        try:
            for round_index in range(2):
                np.testing.assert_array_equal(
                    parallel.compute_uploads(model),
                    serial.compute_uploads(model),
                    err_msg=f"round {round_index}",
                )
        finally:
            backend.shutdown()

    def test_bounding_modes(self):
        for bounding in ("normalize", "clip"):
            model, _ = make_model_and_data(seed=4)
            shards = make_shards(4, seed=5)
            config = DPConfig(
                batch_size=4, sigma=0.5, bounding=bounding, clip_norm=0.8
            )
            serial = make_pool(shards, config, shard_size=2)
            parallel = make_pool(
                shards, config, shard_size=2,
                backend=ThreadedBackend(max_workers=2),
            )
            try:
                for _ in range(2):
                    np.testing.assert_array_equal(
                        parallel.compute_uploads(model),
                        serial.compute_uploads(model),
                    )
            finally:
                parallel.backend.shutdown()

    def test_parallel_pool_auto_shards(self):
        """Without shard_size, a parallel pool splits per backend job."""
        shards = make_shards(12)
        backend = ThreadedBackend(max_workers=4)
        pool = make_pool(shards, DPConfig(batch_size=4), backend=backend)
        assert pool.n_shards == 4
        assert pool.shard_bounds == [(0, 3), (3, 6), (6, 9), (9, 12)]
        backend.shutdown()
        serial = make_pool(shards, DPConfig(batch_size=4))
        assert serial.n_shards == 1

    def test_explicit_shard_size_wins_over_auto(self):
        shards = make_shards(12)
        backend = ThreadedBackend(max_workers=4)
        pool = make_pool(shards, DPConfig(batch_size=4), shard_size=6,
                         backend=backend)
        assert pool.n_shards == 2
        backend.shutdown()

    def test_custom_backend_through_registry(self):
        @BACKENDS.register("reversed_test", summary="test backend", replace=True)
        class RegisteredReversed(ReversedCompletionBackend):
            pass

        try:
            model, _ = make_model_and_data(seed=2)
            shards = make_shards(4, seed=3)
            config = DPConfig(batch_size=4, sigma=1.0)
            serial = make_pool(shards, config, shard_size=2)
            custom = make_pool(shards, config, shard_size=2,
                               backend="reversed_test")
            np.testing.assert_array_equal(
                custom.compute_uploads(model), serial.compute_uploads(model)
            )
        finally:
            BACKENDS.unregister("reversed_test")


class TestBackendSimulation:
    """Backend choice is invisible in end-to-end run results."""

    @pytest.mark.parametrize(
        "backend,kwargs",
        [
            ("threaded", {"max_workers": 2}),
            ("process", {"max_workers": 2}),
        ],
    )
    def test_run_experiment_identical_across_backends(self, backend, kwargs):
        from repro.experiments.presets import benchmark_preset
        from repro.experiments.runner import run_experiment

        base = benchmark_preset(
            dataset="usps_like", byzantine_fraction=0.4, attack="label_flip",
            defense="two_stage", epochs=1, scale=0.2, n_honest=4,
        )
        serial = run_experiment(base)
        parallel = run_experiment(
            base.replace(backend=backend, backend_kwargs=kwargs)
        )
        assert serial.history.as_dict() == parallel.history.as_dict()

    def test_parallel_evaluation_identical(self):
        from repro.federated.server import Server
        from repro.defenses.mean import MeanAggregator

        model, dataset = make_model_and_data(seed=8, n_samples=600)
        backend = ThreadedBackend(max_workers=3)

        def build_server(eval_backend):
            return Server(
                model=model,
                aggregator=MeanAggregator(),
                learning_rate=0.1,
                dp_config=DPConfig(batch_size=4, sigma=1.0),
                auxiliary=None,
                gamma=0.5,
                rng=np.random.default_rng(0),
                backend=eval_backend,
            )

        serial_accuracy = build_server(None).evaluate(dataset, batch_size=64)
        parallel_accuracy = build_server(backend).evaluate(dataset, batch_size=64)
        backend.shutdown()
        assert serial_accuracy == parallel_accuracy

    def test_simulation_close_is_idempotent(self):
        from repro.experiments.presets import benchmark_preset
        from repro.experiments.runner import prepare_experiment

        config = benchmark_preset(
            epochs=1, scale=0.1, n_honest=2,
            backend="threaded", backend_kwargs={"max_workers": 2},
        )
        setup = prepare_experiment(config)
        assert isinstance(setup.simulation.backend, ThreadedBackend)
        setup.simulation.close()
        setup.simulation.close()

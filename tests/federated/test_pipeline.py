"""Tests for the hook-driven round pipeline and its built-in callbacks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DPConfig
from repro.data.auxiliary import sample_auxiliary
from repro.data.partition import partition_iid
from repro.data.synthetic import make_classification
from repro.defenses.mean import MeanAggregator
from repro.federated.pipeline import (
    Checkpoint,
    EarlyStopping,
    EvaluationEvent,
    HistoryRecorder,
    RoundCallback,
    RoundEndEvent,
    RoundLogger,
    RoundPipeline,
    RoundStartEvent,
)
from repro.federated.simulation import FederatedSimulation, SimulationSettings
from repro.nn.layers import Linear
from repro.nn.network import Sequential


def build_simulation(
    total_rounds: int = 6, eval_every: int = 2, seed: int = 0
) -> FederatedSimulation:
    rng = np.random.default_rng(seed)
    data = make_classification(120, 6, 3, class_separation=4.0, within_class_std=0.6,
                               nonlinear=False, rng=rng, name="pipe")
    test = make_classification(60, 6, 3, class_separation=4.0, within_class_std=0.6,
                               nonlinear=False, rng=rng, name="pipe_test")
    shards = partition_iid(data, 3, rng)
    model = Sequential([Linear(6, 3, rng)])
    settings = SimulationSettings(
        total_rounds=total_rounds, learning_rate=0.5, eval_every=eval_every
    )
    return FederatedSimulation(
        model=model,
        honest_datasets=shards,
        n_byzantine=0,
        attack=None,
        aggregator=MeanAggregator(),
        dp_config=DPConfig(batch_size=8, sigma=0.3),
        auxiliary=sample_auxiliary(test, per_class=2, rng=rng),
        test_dataset=test,
        settings=settings,
        seed=seed,
    )


class EventSpy(RoundCallback):
    """Records every hook invocation in order."""

    def __init__(self) -> None:
        self.events: list = []

    def on_round_start(self, event: RoundStartEvent) -> None:
        self.events.append(("start", event))

    def on_evaluation(self, event: EvaluationEvent) -> None:
        self.events.append(("evaluation", event))

    def on_round_end(self, event: RoundEndEvent) -> None:
        self.events.append(("end", event))


class StopAfter(RoundCallback):
    def __init__(self, stop_round: int) -> None:
        self.stop_round = stop_round

    def should_stop(self, event: RoundEndEvent) -> bool:
        return event.round_index >= self.stop_round


class TestEvents:
    def test_event_order_and_counts(self):
        spy = EventSpy()
        simulation = build_simulation(total_rounds=4, eval_every=2)
        RoundPipeline(simulation, [spy]).run()
        kinds = [kind for kind, _ in spy.events]
        # Rounds 0-3, evaluations after rounds 1 and 3 (eval_every=2).
        assert kinds == [
            "start", "end",
            "start", "evaluation", "end",
            "start", "end",
            "start", "evaluation", "end",
        ]

    def test_round_indices_and_totals(self):
        spy = EventSpy()
        simulation = build_simulation(total_rounds=3, eval_every=5)
        RoundPipeline(simulation, [spy]).run()
        starts = [e for kind, e in spy.events if kind == "start"]
        assert [e.round_index for e in starts] == [0, 1, 2]
        assert all(e.total_rounds == 3 for e in starts)
        # eval_every=5 > total_rounds: only the final round is evaluated.
        evaluations = [e for kind, e in spy.events if kind == "evaluation"]
        assert [e.round_index for e in evaluations] == [2]

    def test_end_event_carries_diagnostics_and_accuracy(self):
        spy = EventSpy()
        simulation = build_simulation(total_rounds=2, eval_every=1)
        RoundPipeline(simulation, [spy]).run()
        ends = [e for kind, e in spy.events if kind == "end"]
        assert all("byzantine_selected_fraction" in e.diagnostics for e in ends)
        assert all(e.accuracy is not None for e in ends)

    def test_unevaluated_round_has_no_accuracy(self):
        spy = EventSpy()
        simulation = build_simulation(total_rounds=2, eval_every=2)
        RoundPipeline(simulation, [spy]).run()
        ends = [e for kind, e in spy.events if kind == "end"]
        assert ends[0].accuracy is None
        assert ends[1].accuracy is not None


class TestStages:
    def test_run_round_matches_simulation_run_round(self):
        simulation = build_simulation()
        diagnostics = RoundPipeline(simulation).run_round(0)
        assert "byzantine_selected_fraction" in diagnostics

    def test_broadcast_returns_current_parameters(self):
        simulation = build_simulation()
        pipeline = RoundPipeline(simulation)
        np.testing.assert_array_equal(
            pipeline.broadcast(), simulation.model.get_flat_parameters()
        )

    def test_pipeline_run_is_identical_to_simulation_run(self):
        history_direct = build_simulation(seed=7).run()
        recorder = HistoryRecorder()
        RoundPipeline(build_simulation(seed=7), [recorder]).run()
        assert history_direct.as_dict() == recorder.history.as_dict()


class TestShouldStop:
    def test_stop_terminates_early(self):
        spy = EventSpy()
        simulation = build_simulation(total_rounds=10, eval_every=2)
        RoundPipeline(simulation, [spy, StopAfter(2)]).run()
        starts = [e for kind, e in spy.events if kind == "start"]
        assert [e.round_index for e in starts] == [0, 1, 2]

    def test_stop_round_gets_a_final_evaluation(self):
        # Round 2 is not an eval_every round; the stop must still evaluate
        # it so the recorded history ends at the stop round.
        recorder = HistoryRecorder()
        simulation = build_simulation(total_rounds=10, eval_every=2)
        RoundPipeline(simulation, [recorder, StopAfter(2)]).run()
        assert recorder.history.rounds[-1] == 2

    def test_stop_on_evaluated_round_does_not_double_evaluate(self):
        recorder = HistoryRecorder()
        simulation = build_simulation(total_rounds=10, eval_every=2)
        RoundPipeline(simulation, [recorder, StopAfter(3)]).run()
        assert recorder.history.rounds == [1, 3]

    def test_simulation_run_accepts_callbacks(self):
        history = build_simulation(total_rounds=10, eval_every=2).run(
            callbacks=[StopAfter(1)]
        )
        assert history.rounds[-1] == 1


class TestHistoryRecorder:
    def test_records_evaluations(self):
        recorder = HistoryRecorder()
        recorder.on_evaluation(
            EvaluationEvent(
                round_index=4,
                total_rounds=10,
                accuracy=0.5,
                diagnostics={"byzantine_selected_fraction": 0.25},
            )
        )
        assert recorder.history.rounds == [4]
        assert recorder.history.test_accuracy == [0.5]
        assert recorder.history.byzantine_selected_fraction == [0.25]

    def test_external_history_used(self):
        from repro.federated.history import TrainingHistory

        history = TrainingHistory()
        recorder = HistoryRecorder(history)
        assert recorder.history is history


class TestEarlyStopping:
    def evaluation(self, round_index: int, accuracy: float) -> EvaluationEvent:
        return EvaluationEvent(
            round_index=round_index, total_rounds=100, accuracy=accuracy
        )

    def end(self, round_index: int) -> RoundEndEvent:
        return RoundEndEvent(round_index=round_index, total_rounds=100)

    def test_requires_a_criterion(self):
        with pytest.raises(ValueError):
            EarlyStopping()

    def test_target_accuracy_triggers(self):
        stopper = EarlyStopping(target_accuracy=0.8)
        stopper.on_evaluation(self.evaluation(0, 0.5))
        assert not stopper.should_stop(self.end(0))
        stopper.on_evaluation(self.evaluation(1, 0.85))
        assert stopper.should_stop(self.end(1))
        assert stopper.stopped_round == 1

    def test_patience_triggers_without_improvement(self):
        stopper = EarlyStopping(patience=2, min_delta=0.01)
        stopper.on_evaluation(self.evaluation(0, 0.5))
        stopper.on_evaluation(self.evaluation(1, 0.505))  # below min_delta
        assert not stopper.should_stop(self.end(1))
        stopper.on_evaluation(self.evaluation(2, 0.5))
        assert stopper.should_stop(self.end(2))

    def test_improvement_resets_patience(self):
        stopper = EarlyStopping(patience=2)
        stopper.on_evaluation(self.evaluation(0, 0.5))
        stopper.on_evaluation(self.evaluation(1, 0.4))
        stopper.on_evaluation(self.evaluation(2, 0.6))  # improvement
        assert not stopper.should_stop(self.end(2))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)
        with pytest.raises(ValueError):
            EarlyStopping(target_accuracy=0.5, min_delta=-1.0)

    def test_reset_allows_reuse_across_runs(self):
        stopper = EarlyStopping(target_accuracy=0.0)
        first = build_simulation(total_rounds=6, eval_every=2).run(callbacks=[stopper])
        assert first.rounds == [1]
        stopper.reset()
        second = build_simulation(total_rounds=6, eval_every=2).run(callbacks=[stopper])
        assert second.rounds == [1]  # stops at its own first evaluation, not round 0

    def test_stops_a_real_run(self):
        stopper = EarlyStopping(target_accuracy=0.0)  # any accuracy suffices
        history = build_simulation(total_rounds=10, eval_every=2).run(
            callbacks=[stopper]
        )
        assert history.rounds == [1]
        assert stopper.stopped_round == 1


class TestRoundLogger:
    def test_logs_every_round_by_default(self):
        lines: list[str] = []
        simulation = build_simulation(total_rounds=3, eval_every=2)
        RoundPipeline(simulation, [RoundLogger(log=lines.append)]).run()
        assert len(lines) == 3
        assert lines[0].startswith("round 1/3")
        assert "accuracy" in lines[1]  # round 2 is evaluated
        assert "accuracy" in lines[2]  # final round always evaluated

    def test_every_skips_unevaluated_rounds(self):
        lines: list[str] = []
        simulation = build_simulation(total_rounds=4, eval_every=4)
        RoundPipeline(simulation, [RoundLogger(log=lines.append, every=2)]).run()
        # Rounds 2 and 4 logged by cadence; round 4 is also the evaluation.
        assert [line.split()[1] for line in lines] == ["2/4", "4/4"]

    def test_invalid_every(self):
        with pytest.raises(ValueError):
            RoundLogger(every=0)


class TestCheckpoint:
    def test_snapshots_in_memory(self):
        checkpoint = Checkpoint(every=2)
        simulation = build_simulation(total_rounds=5, eval_every=2)
        RoundPipeline(simulation, [checkpoint]).run()
        # Cadence rounds 1 and 3 plus the final round, which is always kept.
        assert sorted(checkpoint.snapshots) == [1, 3, 4]
        for parameters in checkpoint.snapshots.values():
            assert parameters.shape == simulation.model.get_flat_parameters().shape

    def test_final_round_captured_regardless_of_cadence(self):
        checkpoint = Checkpoint(every=100)
        simulation = build_simulation(total_rounds=3, eval_every=2)
        RoundPipeline(simulation, [checkpoint]).run()
        assert sorted(checkpoint.snapshots) == [2]
        np.testing.assert_array_equal(
            checkpoint.snapshots[2], simulation.model.get_flat_parameters()
        )

    def test_snapshots_written_to_directory(self, tmp_path):
        checkpoint = Checkpoint(every=2, directory=tmp_path)
        simulation = build_simulation(total_rounds=4, eval_every=2)
        RoundPipeline(simulation, [checkpoint]).run()
        files = sorted(p.name for p in tmp_path.glob("*.npy"))
        assert files == ["round_1.npy", "round_3.npy"]
        loaded = np.load(tmp_path / "round_3.npy")
        np.testing.assert_array_equal(loaded, checkpoint.snapshots[3])

    def test_snapshot_is_a_copy(self):
        checkpoint = Checkpoint(every=1)
        simulation = build_simulation(total_rounds=2, eval_every=2)
        RoundPipeline(simulation, [checkpoint]).run()
        # The model moved after round 0; the stored snapshot must not.
        assert not np.array_equal(
            checkpoint.snapshots[0], simulation.model.get_flat_parameters()
        )

    def test_requires_pipeline_binding(self):
        checkpoint = Checkpoint(every=1)
        with pytest.raises(RuntimeError):
            checkpoint.on_round_end(RoundEndEvent(round_index=0, total_rounds=1))

    def test_invalid_every(self):
        with pytest.raises(ValueError):
            Checkpoint(every=0)


class TestStreamingEvaluation:
    """The built-in evaluate-stage replacement callback."""

    def test_chunked_mode_is_exact(self):
        """Chunked evaluation equals Server.evaluate on the full test set."""
        from repro.federated.pipeline import StreamingEvaluation

        simulation = build_simulation(total_rounds=4, eval_every=2)
        streaming = StreamingEvaluation(batch_size=7)
        recorder = HistoryRecorder()
        RoundPipeline(simulation, [recorder, streaming]).run()

        reference = build_simulation(total_rounds=4, eval_every=2)
        reference_recorder = HistoryRecorder()
        RoundPipeline(reference, [reference_recorder]).run()
        assert recorder.history.test_accuracy == reference_recorder.history.test_accuracy
        assert recorder.history.rounds == reference_recorder.history.rounds

    def test_replaces_the_evaluate_stage(self):
        from repro.federated.pipeline import StreamingEvaluation

        simulation = build_simulation()
        calls = []

        class SpyingStreaming(StreamingEvaluation):
            def evaluate_model(self, sim):
                calls.append(True)
                return super().evaluate_model(sim)

        pipeline = RoundPipeline(simulation, [SpyingStreaming()])
        accuracy = pipeline.evaluate()
        assert calls == [True]
        assert 0.0 <= accuracy <= 1.0

    def test_last_override_wins(self):
        simulation = build_simulation()

        class Fixed(RoundCallback):
            def __init__(self, value):
                self.value = value

            def evaluate_model(self, sim):
                return self.value

        pipeline = RoundPipeline(simulation, [Fixed(0.25), Fixed(0.75)])
        assert pipeline.evaluate() == 0.75

    def test_subsampled_mode_uses_fixed_subset(self):
        from repro.federated.pipeline import StreamingEvaluation

        simulation = build_simulation()
        streaming = StreamingEvaluation(subsample=20, seed=5)
        first = streaming.evaluate_model(simulation)
        second = streaming.evaluate_model(simulation)
        assert first == second  # the subset is drawn once and cached
        subset = streaming._subset_cache[1]
        assert len(subset) == 20

    def test_subsample_larger_than_test_set_is_exact(self):
        from repro.federated.pipeline import StreamingEvaluation

        simulation = build_simulation()
        streaming = StreamingEvaluation(subsample=10**6)
        exact = simulation.server.evaluate(simulation.test_dataset)
        assert streaming.evaluate_model(simulation) == exact

    def test_validation(self):
        from repro.federated.pipeline import StreamingEvaluation

        with pytest.raises(ValueError):
            StreamingEvaluation(batch_size=0)
        with pytest.raises(ValueError):
            StreamingEvaluation(subsample=0)


class TestStartRound:
    """Resume support: the loop honours simulation.start_round."""

    def test_loop_starts_at_start_round(self):
        simulation = build_simulation(total_rounds=6, eval_every=2)
        simulation.start_round = 3
        spy = EventSpy()
        RoundPipeline(simulation, [spy]).run()
        starts = [e.round_index for kind, e in spy.events if kind == "start"]
        assert starts == [3, 4, 5]

    def test_start_past_schedule_evaluates_once(self):
        simulation = build_simulation(total_rounds=4, eval_every=2)
        simulation.start_round = 4
        recorder = HistoryRecorder()
        RoundPipeline(simulation, [recorder]).run()
        assert recorder.history.rounds == [3]

"""Tests for WorkerPool: the batched client path vs the sequential protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DPConfig
from repro.core.dp_protocol import LocalDPState, local_update
from repro.data.synthetic import make_classification
from repro.federated.worker import HonestWorker, WorkerPool
from tests.helpers import make_model_and_data


def make_shards(n_workers, seed=0, n_features=8, n_classes=3):
    rng = np.random.default_rng(seed)
    data = make_classification(
        n_samples=40 * n_workers,
        n_features=n_features,
        n_classes=n_classes,
        nonlinear=False,
        rng=rng,
        name="pool",
    )
    return [
        data.subset(np.arange(i * 40, (i + 1) * 40)) for i in range(n_workers)
    ]


def sequential_uploads(model, shards, config, seeds):
    """Ground truth: the scalar protocol run worker by worker."""
    states = [LocalDPState() for _ in shards]
    rngs = [np.random.default_rng(seed) for seed in seeds]

    def one_round():
        return np.vstack(
            [
                local_update(model, shard, state, config, rng)
                for shard, state, rng in zip(shards, states, rngs)
            ]
        )

    return one_round


class TestWorkerPool:
    def test_uploads_match_sequential_protocol(self):
        """The tentpole equivalence: batched rounds == sequential rounds."""
        model, _ = make_model_and_data(seed=2)
        shards = make_shards(6, seed=3)
        config = DPConfig(batch_size=8, sigma=0.9, momentum=0.3)
        seeds = list(range(50, 56))

        reference_round = sequential_uploads(model, shards, config, seeds)
        pool = WorkerPool(
            shards, config, [np.random.default_rng(seed) for seed in seeds]
        )
        for round_index in range(4):
            expected = reference_round()
            actual = pool.compute_uploads(model)
            np.testing.assert_allclose(
                actual, expected, rtol=1e-9, atol=1e-12,
                err_msg=f"round {round_index}",
            )

    def test_uploads_match_sequential_protocol_clip_mode(self):
        model, _ = make_model_and_data(seed=4)
        shards = make_shards(3, seed=5)
        config = DPConfig(batch_size=4, sigma=0.5, bounding="clip", clip_norm=0.8)
        seeds = [7, 8, 9]
        reference_round = sequential_uploads(model, shards, config, seeds)
        pool = WorkerPool(
            shards, config, [np.random.default_rng(seed) for seed in seeds]
        )
        for _ in range(3):
            np.testing.assert_allclose(
                pool.compute_uploads(model), reference_round(),
                rtol=1e-9, atol=1e-12,
            )

    def test_single_worker_pool_matches_scalar(self):
        model, dataset = make_model_and_data(seed=6)
        config = DPConfig(batch_size=8, sigma=1.0)
        pool = WorkerPool([dataset], config, [np.random.default_rng(11)])
        state = LocalDPState()
        rng = np.random.default_rng(11)
        for _ in range(3):
            expected = local_update(model, dataset, state, config, rng)
            np.testing.assert_allclose(
                pool.compute_uploads(model)[0], expected, rtol=1e-9, atol=1e-12
            )

    def test_upload_shape(self):
        model, _ = make_model_and_data(seed=0)
        shards = make_shards(4)
        pool = WorkerPool(
            shards, DPConfig(batch_size=4, sigma=1.0),
            [np.random.default_rng(i) for i in range(4)],
        )
        uploads = pool.compute_uploads(model)
        assert uploads.shape == (4, model.num_parameters)

    def test_deterministic_given_generators(self):
        model, _ = make_model_and_data(seed=1)
        shards = make_shards(3)
        config = DPConfig(batch_size=4, sigma=1.0)
        a = WorkerPool(shards, config, [np.random.default_rng(i) for i in range(3)])
        b = WorkerPool(shards, config, [np.random.default_rng(i) for i in range(3)])
        np.testing.assert_array_equal(
            a.compute_uploads(model), b.compute_uploads(model)
        )

    def test_reset_clears_momentum(self):
        model, _ = make_model_and_data(seed=1)
        shards = make_shards(2)
        pool = WorkerPool(
            shards, DPConfig(batch_size=4, sigma=0.5),
            [np.random.default_rng(i) for i in range(2)],
        )
        pool.compute_uploads(model)
        assert pool.state.slot_momentum.shape == (2, model.num_parameters)
        pool.reset()
        assert pool.state.slot_momentum.shape == (0, 0)

    def test_slots_expose_per_worker_views(self):
        model, _ = make_model_and_data(seed=1)
        shards = make_shards(3)
        rngs = [np.random.default_rng(i) for i in range(3)]
        pool = WorkerPool(shards, DPConfig(batch_size=4, sigma=0.5), rngs)
        slots = pool.slots
        assert len(slots) == 3
        assert slots[1].dataset is shards[1]
        assert slots[1].rng is rngs[1]
        assert slots[1].state.momentum.shape == (0, 0)  # before the first round
        uploads = pool.compute_uploads(model)
        for index, slot in enumerate(pool.slots):
            assert slot.state.momentum.shape == (4, model.num_parameters)
            np.testing.assert_array_equal(slot.state.momentum[0], uploads[index])

    def test_rejects_empty_pool(self):
        with pytest.raises(ValueError):
            WorkerPool([], DPConfig(), [])

    def test_rejects_mismatched_generator_count(self):
        shards = make_shards(2)
        with pytest.raises(ValueError):
            WorkerPool(shards, DPConfig(), [np.random.default_rng(0)])

    def test_rejects_empty_worker_dataset(self):
        shards = make_shards(1)
        empty = shards[0].subset(np.arange(0))
        with pytest.raises(ValueError):
            WorkerPool([empty], DPConfig(), [np.random.default_rng(0)])

    def test_rejects_mixed_feature_dimensions(self):
        a = make_shards(1, n_features=8)[0]
        b = make_shards(1, n_features=9)[0]
        with pytest.raises(ValueError):
            WorkerPool([a, b], DPConfig(), [np.random.default_rng(0)] * 2)


class TestHonestWorkerWrapper:
    """HonestWorker is a thin wrapper over a single-slot pool."""

    def test_matches_scalar_local_update(self):
        model, dataset = make_model_and_data(seed=6)
        config = DPConfig(batch_size=8, sigma=0.7, momentum=0.2)
        worker = HonestWorker(dataset, config, np.random.default_rng(21))
        state = LocalDPState()
        rng = np.random.default_rng(21)
        for _ in range(3):
            expected = local_update(model, dataset, state, config, rng)
            np.testing.assert_allclose(
                worker.compute_upload(model), expected, rtol=1e-9, atol=1e-12
            )

    def test_exposes_dataset_and_config(self):
        model, dataset = make_model_and_data(seed=6)
        config = DPConfig(batch_size=4, sigma=1.0)
        rng = np.random.default_rng(0)
        worker = HonestWorker(dataset, config, rng)
        assert worker.dataset is dataset
        assert worker.dp_config is config
        assert worker.rng is rng

    def test_state_is_read_only_view(self):
        """The pre-PR mutable-state idiom fails loudly instead of silently."""
        from repro.core.dp_protocol import LocalDPState

        _, dataset = make_model_and_data(seed=6)
        worker = HonestWorker(dataset, DPConfig(batch_size=4), np.random.default_rng(0))
        with pytest.raises(AttributeError):
            worker.state = LocalDPState()
        pool = WorkerPool([dataset], DPConfig(batch_size=4), [np.random.default_rng(0)])
        with pytest.raises(AttributeError):
            pool.slots[0].state = LocalDPState()

    def test_attributes_are_read_only(self):
        """Reassigning dataset/rng/dp_config fails loudly -- the pool, not
        the attribute, is what compute_upload consults."""
        _, dataset = make_model_and_data(seed=6)
        worker = HonestWorker(dataset, DPConfig(batch_size=4), np.random.default_rng(0))
        with pytest.raises(AttributeError):
            worker.dataset = dataset
        with pytest.raises(AttributeError):
            worker.rng = np.random.default_rng(1)
        with pytest.raises(AttributeError):
            worker.dp_config = DPConfig(batch_size=8)

"""Tests for HonestWorker and Server."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DPConfig
from repro.core.dp_protocol import upload_noise_std
from repro.data.dataset import Dataset
from repro.defenses.mean import MeanAggregator
from repro.federated.server import Server
from repro.federated.worker import HonestWorker
from tests.helpers import make_model_and_data


@pytest.fixture
def setup():
    model, dataset = make_model_and_data(seed=6)
    return model, dataset


class TestHonestWorker:
    def test_rejects_empty_dataset(self, setup):
        _, dataset = setup
        empty = Dataset(
            features=np.zeros((0, dataset.dim)),
            labels=np.zeros(0, dtype=int),
            num_classes=dataset.num_classes,
        )
        with pytest.raises(ValueError):
            HonestWorker(empty, DPConfig(), np.random.default_rng(0))

    def test_upload_shape(self, setup):
        model, dataset = setup
        worker = HonestWorker(dataset, DPConfig(batch_size=4, sigma=1.0), np.random.default_rng(0))
        upload = worker.compute_upload(model)
        assert upload.shape == (model.num_parameters,)

    def test_momentum_state_persists_between_uploads(self, setup):
        model, dataset = setup
        worker = HonestWorker(dataset, DPConfig(batch_size=4, sigma=0.5), np.random.default_rng(0))
        worker.compute_upload(model)
        assert worker.state.momentum.shape == (4, model.num_parameters)

    def test_reset_clears_momentum(self, setup):
        model, dataset = setup
        worker = HonestWorker(dataset, DPConfig(batch_size=4, sigma=0.5), np.random.default_rng(0))
        worker.compute_upload(model)
        worker.reset()
        assert worker.state.momentum.shape == (0, 0)

    def test_two_workers_with_same_seed_agree(self, setup):
        model, dataset = setup
        config = DPConfig(batch_size=4, sigma=1.0)
        a = HonestWorker(dataset, config, np.random.default_rng(5))
        b = HonestWorker(dataset, config, np.random.default_rng(5))
        np.testing.assert_array_equal(a.compute_upload(model), b.compute_upload(model))


class TestServer:
    def make_server(self, model, dataset, learning_rate=0.5, sigma=0.0):
        return Server(
            model=model,
            aggregator=MeanAggregator(),
            learning_rate=learning_rate,
            dp_config=DPConfig(batch_size=8, sigma=sigma),
            auxiliary=dataset.subset(np.arange(6)),
            gamma=0.5,
            rng=np.random.default_rng(9),
        )

    def test_broadcast_returns_current_parameters(self, setup):
        model, dataset = setup
        server = self.make_server(model, dataset)
        np.testing.assert_array_equal(server.broadcast(), model.get_flat_parameters())

    def test_rejects_nonpositive_learning_rate(self, setup):
        model, dataset = setup
        with pytest.raises(ValueError):
            Server(
                model=model,
                aggregator=MeanAggregator(),
                learning_rate=0.0,
                dp_config=DPConfig(),
                auxiliary=None,
                gamma=0.5,
                rng=np.random.default_rng(0),
            )

    def test_rejects_missing_auxiliary_for_aux_dependent_defense(self, setup):
        model, _ = setup
        from repro.core.protocol import TwoStageAggregator

        with pytest.raises(ValueError):
            Server(
                model=model,
                aggregator=TwoStageAggregator(),
                learning_rate=0.1,
                dp_config=DPConfig(),
                auxiliary=None,
                gamma=0.5,
                rng=np.random.default_rng(0),
            )

    def test_update_applies_learning_rate(self, setup):
        model, dataset = setup
        server = self.make_server(model, dataset, learning_rate=0.5)
        before = model.get_flat_parameters().copy()
        upload = np.ones(model.num_parameters)
        aggregated = server.update([upload, upload])
        np.testing.assert_allclose(aggregated, upload)
        np.testing.assert_allclose(model.get_flat_parameters(), before - 0.5 * upload)

    def test_update_increments_round_index(self, setup):
        model, dataset = setup
        server = self.make_server(model, dataset)
        assert server.round_index == 0
        server.update([np.zeros(model.num_parameters)])
        assert server.round_index == 1

    def test_aggregation_context_reports_upload_noise(self, setup):
        model, dataset = setup
        server = self.make_server(model, dataset, sigma=3.2)
        context = server.aggregation_context()
        assert context.upload_noise_std == pytest.approx(
            upload_noise_std(DPConfig(batch_size=8, sigma=3.2))
        )
        assert context.honest_fraction == 0.5
        assert context.model is model

    def test_evaluate_returns_accuracy_in_unit_interval(self, setup):
        model, dataset = setup
        server = self.make_server(model, dataset)
        accuracy = server.evaluate(dataset)
        assert 0.0 <= accuracy <= 1.0

    def test_evaluate_chunked_matches_full_forward(self, setup):
        """Chunked evaluation is exact, whatever the chunk size."""
        model, dataset = setup
        server = self.make_server(model, dataset)
        from repro.nn.metrics import accuracy as accuracy_metric

        full = accuracy_metric(model.predict(dataset.features), dataset.labels)
        for batch_size in (1, 7, len(dataset) - 1, len(dataset), 10 * len(dataset)):
            assert server.evaluate(dataset, batch_size=batch_size) == full

    def test_evaluate_rejects_nonpositive_batch_size(self, setup):
        model, dataset = setup
        server = self.make_server(model, dataset)
        with pytest.raises(ValueError):
            server.evaluate(dataset, batch_size=0)

    def test_zero_update_leaves_model_unchanged(self, setup):
        model, dataset = setup
        server = self.make_server(model, dataset)
        before = model.get_flat_parameters().copy()
        server.update([np.zeros(model.num_parameters)])
        np.testing.assert_array_equal(model.get_flat_parameters(), before)

"""Tests for the generic component registry framework (repro.registry)."""

from __future__ import annotations

import pytest

from repro.registry import Registry, RegistryEntry, UnknownComponentError


class Widget:
    def __init__(self, size: int = 1, color: str = "red") -> None:
        self.size = size
        self.color = color


def make_registry() -> Registry:
    registry = Registry("widget")
    registry.register("plain", Widget, summary="a plain widget")
    return registry


class TestRegistration:
    def test_decorator_returns_object_unchanged(self):
        registry = Registry("widget")

        @registry.register("decorated")
        class Decorated:
            pass

        assert Decorated.__name__ == "Decorated"
        assert registry.get("decorated").builder is Decorated

    def test_direct_call_registers(self):
        registry = make_registry()
        assert "plain" in registry
        assert registry.get("plain").summary == "a plain widget"

    def test_duplicate_name_rejected(self):
        registry = make_registry()
        with pytest.raises(ValueError, match="already registered"):
            registry.register("plain", Widget)

    def test_replace_overwrites(self):
        registry = make_registry()
        registry.register("plain", Widget, summary="v2", replace=True)
        assert registry.get("plain").summary == "v2"
        assert len(registry) == 1

    def test_alias_resolves_to_same_entry(self):
        registry = Registry("widget")
        registry.register("canonical", Widget, aliases=("alt", "other"))
        assert registry.get("alt") is registry.get("canonical")
        assert "other" in registry

    def test_alias_clash_rejected(self):
        registry = make_registry()
        with pytest.raises(ValueError, match="alias"):
            registry.register("fancy", Widget, aliases=("plain",))

    def test_name_clash_with_alias_rejected(self):
        registry = Registry("widget")
        registry.register("canonical", Widget, aliases=("alt",))
        with pytest.raises(ValueError, match="already registered"):
            registry.register("alt", Widget)

    def test_unregister_removes_name_and_aliases(self):
        registry = Registry("widget")
        registry.register("canonical", Widget, aliases=("alt",))
        registry.unregister("canonical")
        assert "canonical" not in registry
        assert "alt" not in registry

    def test_empty_kind_rejected(self):
        with pytest.raises(ValueError):
            Registry("")


class TestLookup:
    def test_unknown_name_raises_keyerror_subclass(self):
        registry = make_registry()
        with pytest.raises(UnknownComponentError):
            registry.get("nope")
        with pytest.raises(KeyError):
            registry.get("nope")

    def test_unknown_name_message_lists_available(self):
        registry = make_registry()
        with pytest.raises(UnknownComponentError, match="plain"):
            registry.get("nope")

    def test_names_sorted(self):
        registry = make_registry()
        registry.register("abacus", Widget)
        assert registry.names() == ["abacus", "plain"]

    def test_names_with_aliases(self):
        registry = Registry("widget")
        registry.register("b", Widget, aliases=("a",))
        assert registry.names(include_aliases=True) == ["a", "b"]
        assert registry.names() == ["b"]

    def test_iteration_and_len(self):
        registry = make_registry()
        registry.register("abacus", Widget)
        assert list(registry) == ["abacus", "plain"]
        assert len(registry) == 2

    def test_contains_non_string(self):
        registry = make_registry()
        assert 42 not in registry

    def test_metadata_read_only(self):
        registry = Registry("widget")
        registry.register("w", Widget, metadata={"key": "value"})
        metadata = registry.metadata("w")
        assert metadata["key"] == "value"
        with pytest.raises(TypeError):
            metadata["key"] = "other"  # type: ignore[index]

    def test_nested_metadata_not_shared_between_entries(self):
        registry = Registry("widget")
        shared = {"defaults": {"k": 1}}
        registry.register("a", Widget, metadata=shared)
        registry.register("b", Widget, metadata=shared)
        shared["defaults"]["k"] = 2  # caller mutates its own dict afterwards
        assert registry.metadata("a")["defaults"] == {"k": 1}
        registry.metadata("a")["defaults"]["k"] = 3  # nested level is a copy too
        assert registry.metadata("b")["defaults"] == {"k": 1}


class TestBuild:
    def test_builds_with_kwargs(self):
        registry = make_registry()
        widget = registry.build("plain", size=3, color="blue")
        assert widget.size == 3
        assert widget.color == "blue"

    def test_unknown_kwarg_names_component_and_key(self):
        registry = make_registry()
        with pytest.raises(TypeError) as excinfo:
            registry.build("plain", sized=3)
        message = str(excinfo.value)
        assert "plain" in message
        assert "sized" in message
        assert "size" in message  # the accepted keys are listed

    def test_unknown_name_raises(self):
        registry = make_registry()
        with pytest.raises(UnknownComponentError):
            registry.build("nope")

    def test_var_keyword_builder_accepts_anything(self):
        registry = Registry("widget")
        registry.register("open", lambda **kwargs: kwargs)
        assert registry.build("open", anything=1) == {"anything": 1}

    def test_explicit_valid_kwargs_override_introspection(self):
        registry = Registry("widget")
        registry.register(
            "strict", lambda **kwargs: kwargs, valid_kwargs=("allowed",)
        )
        assert registry.build("strict", allowed=1) == {"allowed": 1}
        with pytest.raises(TypeError, match="strict"):
            registry.build("strict", forbidden=1)

    def test_callable_valid_kwargs_resolved_lazily(self):
        registry = Registry("widget")
        allowed = ["first"]
        registry.register(
            "lazy", lambda **kwargs: kwargs, valid_kwargs=lambda: tuple(allowed)
        )
        assert registry.build("lazy", first=1) == {"first": 1}
        with pytest.raises(TypeError, match="second"):
            registry.build("lazy", second=2)
        allowed.append("second")  # the source of truth grows; no re-registration
        assert registry.build("lazy", second=2) == {"second": 2}

    def test_build_via_alias(self):
        registry = Registry("widget")
        registry.register("canonical", Widget, aliases=("alt",))
        assert isinstance(registry.build("alt"), Widget)


class TestDescribe:
    def test_rows_sorted_and_complete(self):
        registry = Registry("widget")
        registry.register("b", Widget, summary="second")
        registry.register(
            "a", Widget, aliases=("first_alias",), summary="first", metadata={"k": 1}
        )
        rows = registry.describe()
        assert [row["name"] for row in rows] == ["a", "b"]
        first = rows[0]
        assert first["kind"] == "widget"
        assert first["aliases"] == ["first_alias"]
        assert first["summary"] == "first"
        assert first["metadata"] == {"k": 1}

    def test_describe_metadata_is_a_copy(self):
        registry = Registry("widget")
        registry.register("w", Widget, metadata={"k": 1})
        rows = registry.describe()
        rows[0]["metadata"]["k"] = 2
        assert registry.metadata("w")["k"] == 1

    def test_entry_dataclass_exposed(self):
        registry = make_registry()
        entry = registry.get("plain")
        assert isinstance(entry, RegistryEntry)
        assert entry.name == "plain"


class TestDomainRegistries:
    """The four library registries are Registry instances with metadata."""

    def test_attacks(self):
        from repro.byzantine import ATTACKS

        assert isinstance(ATTACKS, Registry)
        for name in ("none", "gaussian", "label_flip", "lmp", "alittle", "inner"):
            assert name in ATTACKS

    def test_defenses_carry_config_defaults(self):
        from repro.defenses import DEFENSES, defense_config_defaults

        assert isinstance(DEFENSES, Registry)
        assert defense_config_defaults("two_stage") == {"gamma": "gamma"}
        assert defense_config_defaults("krum") == {
            "byzantine_fraction": "byzantine_fraction"
        }
        assert callable(defense_config_defaults("trimmed_mean")["trim_fraction"])
        assert defense_config_defaults("mean") == {}

    def test_defense_config_defaults_returns_a_copy(self):
        from repro.defenses import defense_config_defaults

        defaults = defense_config_defaults("two_stage")
        defaults["injected"] = "byzantine_fraction"
        assert "injected" not in defense_config_defaults("two_stage")
        assert "injected" not in defense_config_defaults("first_stage_only")

    def test_datasets_carry_spec_and_default_model(self):
        from repro.data import DATASETS
        from repro.data.registry import DatasetSpec

        metadata = DATASETS.metadata("mnist_like")
        assert isinstance(metadata["spec"], DatasetSpec)
        assert metadata["default_model"] == "mlp_medium"

    def test_models(self):
        from repro.nn import MODELS

        assert isinstance(MODELS, Registry)
        assert MODELS.names() == ["linear", "mlp_large", "mlp_medium", "mlp_small"]

"""Tests for the Bulyan aggregation rule."""

from __future__ import annotations

import numpy as np
import pytest

from repro.defenses.bulyan import BulyanAggregator
from repro.defenses.registry import build_defense
from tests.helpers import make_aggregation_context


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(55)


@pytest.fixture
def context():
    return make_aggregation_context(seed=5)


def clustered_uploads(rng, n_honest, n_byzantine, dim=20):
    target = np.ones(dim)
    honest = [target + 0.1 * rng.normal(size=dim) for _ in range(n_honest)]
    byzantine = [-40.0 * target + rng.normal(size=dim) for _ in range(n_byzantine)]
    return honest + byzantine, target


class TestBulyan:
    def test_registered(self):
        assert isinstance(build_defense("bulyan", byzantine_fraction=0.2), BulyanAggregator)

    def test_output_shape(self, rng, context):
        uploads = [rng.normal(size=12) for _ in range(9)]
        result = BulyanAggregator(byzantine_fraction=0.2).aggregate(uploads, context)
        assert result.shape == (12,)

    def test_robust_to_minority_outliers(self, rng, context):
        uploads, target = clustered_uploads(rng, n_honest=13, n_byzantine=3)
        result = BulyanAggregator(byzantine_fraction=0.2).aggregate(uploads, context)
        assert np.linalg.norm(result - target) < 1.0

    def test_result_within_honest_envelope_for_minority_attack(self, rng, context):
        uploads, _ = clustered_uploads(rng, n_honest=13, n_byzantine=3)
        honest = np.vstack(uploads[:13])
        result = BulyanAggregator(byzantine_fraction=0.2).aggregate(uploads, context)
        assert np.all(result >= honest.min(axis=0) - 1e-9)
        assert np.all(result <= honest.max(axis=0) + 1e-9)

    def test_no_byzantine_equals_plain_average_band(self, rng, context):
        uploads = [rng.normal(size=10) for _ in range(8)]
        result = BulyanAggregator(byzantine_fraction=0.0).aggregate(uploads, context)
        stacked = np.vstack(uploads)
        assert np.all(result >= stacked.min(axis=0) - 1e-9)
        assert np.all(result <= stacked.max(axis=0) + 1e-9)

    def test_breaks_under_byzantine_majority(self, rng, context):
        """Table 1: Bulyan is not resilient past 50% Byzantine workers."""
        dim = 20
        target = np.ones(dim)
        honest = [target + 0.1 * rng.normal(size=dim) for _ in range(4)]
        byzantine = [-target + 0.01 * rng.normal(size=dim) for _ in range(10)]
        result = BulyanAggregator(byzantine_fraction=0.3).aggregate(honest + byzantine, context)
        assert float(np.dot(result, target)) < 0.0

    def test_single_upload(self, rng, context):
        upload = rng.normal(size=6)
        result = BulyanAggregator(byzantine_fraction=0.2).aggregate([upload], context)
        np.testing.assert_allclose(result, upload)

    def test_deterministic(self, rng, context):
        """Same uploads in the same order always give the same aggregate.

        (Exact permutation invariance does not hold for Bulyan: the iterated
        Krum selection can hit score ties -- two mutually-nearest uploads --
        which are broken by position, as in the original algorithm.)
        """
        uploads = [rng.normal(size=8) for _ in range(7)]
        aggregator = BulyanAggregator(byzantine_fraction=0.2)
        first = aggregator.aggregate(uploads, context)
        second = aggregator.aggregate(uploads, context)
        np.testing.assert_allclose(first, second)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            BulyanAggregator(byzantine_fraction=1.0)

    def test_runs_inside_experiment(self):
        from repro.experiments import benchmark_preset, run_experiment

        config = benchmark_preset(
            scale=0.05, n_honest=4, epochs=1,
            byzantine_fraction=0.4, attack="gaussian", defense="bulyan",
        )
        assert 0.0 <= run_experiment(config).final_accuracy <= 1.0

"""Tests for the baseline robust aggregation rules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.defenses.base import Aggregator
from repro.defenses.fltrust import FLTrustAggregator
from repro.defenses.krum import KrumAggregator, krum_scores
from repro.defenses.mean import MeanAggregator
from repro.defenses.median import CoordinateMedianAggregator
from repro.defenses.rfa import GeometricMedianAggregator, geometric_median
from repro.defenses.signsgd import SignAggregator
from repro.defenses.trimmed_mean import TrimmedMeanAggregator
from tests.helpers import make_aggregation_context


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(41)


@pytest.fixture
def context():
    return make_aggregation_context(seed=1)


def clustered_uploads(rng: np.random.Generator, n_honest: int, n_byzantine: int, dim: int = 27):
    """Honest uploads near +1 direction, Byzantine outliers far away."""
    target = np.ones(dim)
    honest = [target + 0.1 * rng.normal(size=dim) for _ in range(n_honest)]
    byzantine = [target * -50.0 + rng.normal(size=dim) for _ in range(n_byzantine)]
    return honest + byzantine, target


class TestAggregatorBase:
    def test_abstract_aggregate(self, context):
        with pytest.raises(NotImplementedError):
            Aggregator().aggregate([np.zeros(3)], context)

    def test_validate_rejects_empty(self):
        with pytest.raises(ValueError):
            Aggregator._validate([])

    def test_validate_stacks(self):
        stacked = Aggregator._validate([np.zeros(4), np.ones(4)])
        assert stacked.shape == (2, 4)

    def test_reset_is_noop_by_default(self):
        Aggregator().reset()

    def test_requires_auxiliary_defaults_false(self):
        assert not MeanAggregator.requires_auxiliary
        assert FLTrustAggregator.requires_auxiliary


class TestMean:
    def test_equals_numpy_mean(self, rng, context):
        uploads = [rng.normal(size=27) for _ in range(5)]
        result = MeanAggregator().aggregate(uploads, context)
        np.testing.assert_allclose(result, np.mean(uploads, axis=0))

    def test_single_upload(self, rng, context):
        upload = rng.normal(size=27)
        np.testing.assert_allclose(MeanAggregator().aggregate([upload], context), upload)

    def test_not_robust_to_one_outlier(self, rng, context):
        """By design: one large Byzantine upload drags the average away."""
        uploads, target = clustered_uploads(rng, n_honest=9, n_byzantine=1)
        result = MeanAggregator().aggregate(uploads, context)
        assert np.linalg.norm(result - target) > 1.0


class TestKrum:
    def test_scores_prefer_clustered_points(self, rng):
        uploads, _ = clustered_uploads(rng, n_honest=8, n_byzantine=2)
        scores = krum_scores(np.vstack(uploads), n_byzantine=2)
        assert scores[:8].max() < scores[8:].min()

    def test_selects_an_honest_upload(self, rng, context):
        uploads, target = clustered_uploads(rng, n_honest=8, n_byzantine=2)
        result = KrumAggregator(byzantine_fraction=0.2).aggregate(uploads, context)
        assert np.linalg.norm(result - target) < 1.0

    def test_multi_krum_averages_several(self, rng, context):
        uploads, target = clustered_uploads(rng, n_honest=8, n_byzantine=2)
        result = KrumAggregator(byzantine_fraction=0.2, multi=3).aggregate(uploads, context)
        assert np.linalg.norm(result - target) < 1.0

    def test_returns_one_of_the_uploads_for_multi_one(self, rng, context):
        uploads = [rng.normal(size=10) for _ in range(6)]
        result = KrumAggregator(byzantine_fraction=0.0).aggregate(uploads, context)
        assert any(np.allclose(result, upload) for upload in uploads)

    def test_breaks_under_byzantine_majority(self, rng, context):
        """Krum's known limitation: a colluding majority wins the vote."""
        dim = 27
        target = np.ones(dim)
        honest = [target + 0.1 * rng.normal(size=dim) for _ in range(4)]
        byzantine = [-target + 0.01 * rng.normal(size=dim) for _ in range(8)]
        result = KrumAggregator(byzantine_fraction=0.3).aggregate(honest + byzantine, context)
        assert float(np.dot(result, target)) < 0.0

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            KrumAggregator(byzantine_fraction=1.0)
        with pytest.raises(ValueError):
            KrumAggregator(multi=0)


class TestMedianFamily:
    def test_median_matches_numpy(self, rng, context):
        uploads = [rng.normal(size=15) for _ in range(7)]
        result = CoordinateMedianAggregator().aggregate(uploads, context)
        np.testing.assert_allclose(result, np.median(np.vstack(uploads), axis=0))

    def test_median_robust_to_minority_outliers(self, rng, context):
        uploads, target = clustered_uploads(rng, n_honest=7, n_byzantine=3)
        result = CoordinateMedianAggregator().aggregate(uploads, context)
        assert np.linalg.norm(result - target) < 1.0

    def test_median_breaks_under_majority(self, rng, context):
        uploads, target = clustered_uploads(rng, n_honest=3, n_byzantine=7)
        result = CoordinateMedianAggregator().aggregate(uploads, context)
        assert np.linalg.norm(result - target) > 10.0

    def test_trimmed_mean_drops_extremes(self, context):
        uploads = [np.array([value]) for value in (0.0, 1.0, 1.1, 0.9, 100.0)]
        result = TrimmedMeanAggregator(trim_fraction=0.2).aggregate(uploads, context)
        assert result[0] == pytest.approx(1.0, abs=0.1)

    def test_trimmed_mean_zero_trim_is_mean(self, rng, context):
        uploads = [rng.normal(size=8) for _ in range(5)]
        result = TrimmedMeanAggregator(trim_fraction=0.0).aggregate(uploads, context)
        np.testing.assert_allclose(result, np.mean(uploads, axis=0))

    def test_trimmed_mean_robust_to_minority(self, rng, context):
        uploads, target = clustered_uploads(rng, n_honest=8, n_byzantine=2)
        result = TrimmedMeanAggregator(trim_fraction=0.25).aggregate(uploads, context)
        assert np.linalg.norm(result - target) < 1.0

    def test_trimmed_mean_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            TrimmedMeanAggregator(trim_fraction=0.5)

    def test_trimmed_mean_clamps_excessive_trim(self, rng, context):
        uploads = [rng.normal(size=4) for _ in range(3)]
        result = TrimmedMeanAggregator(trim_fraction=0.45).aggregate(uploads, context)
        np.testing.assert_allclose(result, np.median(np.vstack(uploads), axis=0))


class TestGeometricMedian:
    def test_single_point_is_itself(self):
        point = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(geometric_median(point), point[0])

    def test_collinear_symmetric_points(self):
        points = np.array([[-1.0, 0.0], [0.0, 0.0], [1.0, 0.0]])
        np.testing.assert_allclose(geometric_median(points), [0.0, 0.0], atol=1e-6)

    def test_minimises_sum_of_distances(self, rng):
        points = rng.normal(size=(12, 5))
        median = geometric_median(points)

        def objective(candidate):
            return float(np.linalg.norm(points - candidate, axis=1).sum())

        best = objective(median)
        for _ in range(50):
            perturbed = median + 0.05 * rng.normal(size=5)
            assert objective(perturbed) >= best - 1e-6

    def test_robust_to_minority_outliers(self, rng, context):
        uploads, target = clustered_uploads(rng, n_honest=8, n_byzantine=2)
        result = GeometricMedianAggregator().aggregate(uploads, context)
        assert np.linalg.norm(result - target) < 1.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_median(np.zeros((0, 3)))

    def test_rejects_bad_iterations(self):
        with pytest.raises(ValueError):
            GeometricMedianAggregator(max_iterations=0)


class TestFLTrust:
    def test_requires_auxiliary(self, rng):
        context = make_aggregation_context(seed=3, with_auxiliary=False)
        with pytest.raises(ValueError):
            FLTrustAggregator().aggregate([rng.normal(size=27)], context)

    def test_output_shape(self, rng, context):
        uploads = [rng.normal(size=27) for _ in range(5)]
        result = FLTrustAggregator().aggregate(uploads, context)
        assert result.shape == (27,)

    def test_negative_cosine_uploads_get_zero_trust(self, context):
        """Uploads pointing against the server gradient are discarded."""
        server_gradient = context.server_gradient()
        aligned = server_gradient.copy()
        inverted = -5.0 * server_gradient
        result = FLTrustAggregator().aggregate([aligned, inverted], context)
        cosine = float(
            np.dot(result, server_gradient)
            / (np.linalg.norm(result) * np.linalg.norm(server_gradient))
        )
        assert cosine == pytest.approx(1.0, abs=1e-6)

    def test_all_inverted_uploads_give_zero_update(self, context):
        server_gradient = context.server_gradient()
        uploads = [-server_gradient, -2.0 * server_gradient]
        result = FLTrustAggregator().aggregate(uploads, context)
        np.testing.assert_allclose(result, 0.0)

    def test_uploads_rescaled_to_server_norm(self, context):
        server_gradient = context.server_gradient()
        scaled_up = 100.0 * server_gradient
        result = FLTrustAggregator().aggregate([scaled_up], context)
        assert np.linalg.norm(result) == pytest.approx(
            np.linalg.norm(server_gradient), rel=1e-6
        )


class TestSignAggregator:
    def test_output_is_scaled_signs(self, rng, context):
        uploads = [rng.normal(size=20) for _ in range(5)]
        result = SignAggregator(scale=0.01).aggregate(uploads, context)
        assert set(np.round(np.abs(result[result != 0.0]), 10)) <= {0.01}

    def test_majority_vote(self, context):
        uploads = [np.array([1.0, -1.0]), np.array([2.0, -3.0]), np.array([-0.5, 1.0])]
        result = SignAggregator(scale=1.0).aggregate(uploads, context)
        np.testing.assert_allclose(result, [1.0, -1.0])

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            SignAggregator(scale=0.0)

    def test_breaks_under_majority_attack(self, context):
        """Sign majority vote loses once Byzantine workers outnumber honest ones."""
        honest = [np.array([1.0, 1.0])] * 3
        byzantine = [np.array([-1.0, -1.0])] * 5
        result = SignAggregator(scale=1.0).aggregate(honest + byzantine, context)
        np.testing.assert_allclose(result, [-1.0, -1.0])


class TestPermutationInvariance:
    @pytest.mark.parametrize(
        "aggregator",
        [
            MeanAggregator(),
            CoordinateMedianAggregator(),
            TrimmedMeanAggregator(0.2),
            GeometricMedianAggregator(),
            SignAggregator(),
        ],
    )
    def test_order_of_uploads_does_not_matter(self, aggregator, rng, context):
        uploads = [rng.normal(size=12) for _ in range(7)]
        forward = aggregator.aggregate(uploads, context)
        backward = aggregator.aggregate(list(reversed(uploads)), context)
        np.testing.assert_allclose(forward, backward, atol=1e-9)

"""Tests for the defense registry."""

from __future__ import annotations

import pytest

from repro.core.protocol import TwoStageAggregator
from repro.defenses.krum import KrumAggregator
from repro.defenses.mean import MeanAggregator
from repro.defenses.registry import available_defenses, build_defense


class TestDefenseRegistry:
    def test_baselines_available(self):
        names = available_defenses()
        for name in (
            "mean",
            "krum",
            "multi_krum",
            "median",
            "trimmed_mean",
            "rfa",
            "fltrust",
            "signsgd",
        ):
            assert name in names

    def test_protocol_variants_available(self):
        names = available_defenses()
        for name in ("two_stage", "first_stage_only", "second_stage_only"):
            assert name in names

    @pytest.mark.parametrize("name", sorted(set(["mean", "krum", "median", "trimmed_mean", "rfa", "fltrust", "signsgd"])))
    def test_build_each_baseline(self, name):
        assert build_defense(name) is not None

    def test_build_mean_type(self):
        assert isinstance(build_defense("mean"), MeanAggregator)

    def test_build_two_stage_type(self):
        aggregator = build_defense("two_stage", gamma=0.4)
        assert isinstance(aggregator, TwoStageAggregator)
        assert aggregator.config.gamma == 0.4
        assert aggregator.config.use_first_stage and aggregator.config.use_second_stage

    def test_build_first_stage_only(self):
        aggregator = build_defense("first_stage_only", gamma=0.4)
        assert isinstance(aggregator, TwoStageAggregator)
        assert aggregator.config.use_first_stage
        assert not aggregator.config.use_second_stage

    def test_build_second_stage_only(self):
        aggregator = build_defense("second_stage_only", gamma=0.4)
        assert not aggregator.config.use_first_stage
        assert aggregator.config.use_second_stage

    def test_build_krum_forwards_kwargs(self):
        aggregator = build_defense("krum", byzantine_fraction=0.3)
        assert isinstance(aggregator, KrumAggregator)
        assert aggregator.byzantine_fraction == 0.3

    def test_build_multi_krum_default_multi(self):
        aggregator = build_defense("multi_krum", byzantine_fraction=0.2)
        assert isinstance(aggregator, KrumAggregator)
        assert aggregator.multi > 1

    def test_unknown_defense_raises(self):
        with pytest.raises(KeyError):
            build_defense("blockchain")

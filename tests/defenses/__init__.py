"""Test package (unique module namespace for duplicate basenames)."""

"""Streaming aggregation is bitwise-identical to the in-memory path.

``Aggregator.aggregate_stream`` consumes ``(m_i, d)`` upload blocks whose
concatenation is exactly the matrix ``aggregate`` would receive.  The
contract -- relied on by the out-of-core pipeline path -- is *bitwise*
equality for every registered defense, every shard split (including
ragged and single-row blocks), and partial cohorts with ``worker_ids``:
the true out-of-core reductions (``accepts_streaming`` rules) must
reproduce the in-memory result exactly, and the base concatenate-fallback
makes every other rule streamable by construction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.defenses.base import Aggregator
from repro.defenses.registry import DEFENSES, build_defense
from tests.helpers import make_aggregation_context

N_WORKERS = 12
DIMENSION = 27  # matches make_aggregation_context's linear model


def make_uploads(seed: int = 5, n: int = N_WORKERS) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, DIMENSION))


def blocks_of(matrix: np.ndarray, shard_size: int):
    """Contiguous blocks, yielded through one reused scratch buffer.

    Reusing the buffer enforces the documented contract that a block is
    only valid until the next one is drawn -- an implementation that
    keeps references instead of copying fails bitwise here.
    """
    scratch = np.empty((min(shard_size, matrix.shape[0]), DIMENSION))
    for start in range(0, matrix.shape[0], shard_size):
        chunk = matrix[start : start + shard_size]
        view = scratch[: chunk.shape[0]]
        view[...] = chunk
        yield view


class TestStreamEqualsInMemory:
    @pytest.mark.parametrize("shard_size", [1, 3, 5, N_WORKERS])
    @pytest.mark.parametrize("name", DEFENSES.names())
    def test_full_cohort_bitwise(self, name, shard_size):
        uploads = make_uploads()
        reference = build_defense(name).aggregate(
            uploads, make_aggregation_context(seed=1)
        )
        streamed = build_defense(name).aggregate_stream(
            blocks_of(uploads, shard_size), make_aggregation_context(seed=1)
        )
        np.testing.assert_array_equal(streamed, reference)

    @pytest.mark.parametrize("shard_size", [2, 4, 7])
    @pytest.mark.parametrize("name", DEFENSES.names())
    def test_partial_cohort_bitwise(self, name, shard_size):
        # 9 survivors of an expected 12-worker cohort (a faulty round's
        # survivor rows), identified by their worker ids.
        survivor_ids = np.array([0, 1, 3, 4, 5, 7, 8, 10, 11], dtype=np.int64)
        rows = make_uploads(seed=7)[survivor_ids]

        def context():
            built = make_aggregation_context(seed=2)
            built.worker_ids = survivor_ids
            built.population = N_WORKERS
            return built

        reference = build_defense(name).aggregate(rows, context())
        streamed = build_defense(name).aggregate_stream(
            blocks_of(rows, shard_size), context()
        )
        np.testing.assert_array_equal(streamed, reference)

    def test_two_stage_declares_streaming_support(self):
        for name in ("two_stage", "first_stage_only", "second_stage_only"):
            assert build_defense(name).accepts_streaming
        assert not build_defense("mean").accepts_streaming
        assert not Aggregator.accepts_streaming

    def test_two_stage_stream_repeats_bitwise(self):
        """Two streamed rounds over the same blocks agree exactly."""
        uploads = make_uploads(seed=9)
        first = build_defense("two_stage").aggregate_stream(
            blocks_of(uploads, 5), make_aggregation_context(seed=3)
        )
        second = build_defense("two_stage").aggregate_stream(
            blocks_of(uploads, 5), make_aggregation_context(seed=3)
        )
        np.testing.assert_array_equal(first, second)

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError):
            build_defense("mean").aggregate_stream(
                iter(()), make_aggregation_context(seed=4)
            )
        with pytest.raises(ValueError):
            build_defense("two_stage").aggregate_stream(
                iter(()), make_aggregation_context(seed=4)
            )

"""Tests for the chi-square norm-interval test (Section 4.3, "Norm test")."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.stats.norm_test import norm_interval, squared_norm_interval


class TestSquaredNormInterval:
    def test_centered_at_sigma_squared_d(self):
        sigma, d = 0.5, 4000
        low, high = squared_norm_interval(sigma, d, k=3.0)
        assert (low + high) / 2.0 == pytest.approx(sigma**2 * d)

    def test_width_matches_formula(self):
        sigma, d, k = 1.2, 2000, 3.0
        low, high = squared_norm_interval(sigma, d, k)
        assert high - low == pytest.approx(2.0 * k * sigma**2 * math.sqrt(2.0 * d))

    def test_lower_bound_nonnegative(self):
        low, _ = squared_norm_interval(1.0, 4, k=10.0)
        assert low >= 0.0

    def test_wider_k_wider_interval(self):
        narrow = squared_norm_interval(1.0, 1000, k=1.0)
        wide = squared_norm_interval(1.0, 1000, k=3.0)
        assert wide[0] < narrow[0] and wide[1] > narrow[1]

    def test_relative_width_shrinks_with_dimension(self):
        """The paper's argument: sigma^2 sqrt(2d) / (sigma^2 d) -> 0 for large d."""

        def relative_width(d: int) -> float:
            low, high = squared_norm_interval(1.0, d)
            return (high - low) / (1.0**2 * d)

        assert relative_width(100_000) < relative_width(1_000) < relative_width(10)

    def test_gaussian_vectors_mostly_inside(self):
        """~99.7% of genuine noise vectors fall inside the 3-sigma interval."""
        rng = np.random.default_rng(0)
        sigma, d = 0.7, 3000
        low, high = squared_norm_interval(sigma, d, k=3.0)
        inside = 0
        trials = 300
        for _ in range(trials):
            z = rng.normal(0.0, sigma, size=d)
            if low <= float(z @ z) <= high:
                inside += 1
        assert inside / trials > 0.98

    def test_scaled_vector_falls_outside(self):
        rng = np.random.default_rng(1)
        sigma, d = 1.0, 3000
        low, high = squared_norm_interval(sigma, d)
        z = rng.normal(0.0, sigma * 1.2, size=d)
        assert not low <= float(z @ z) <= high

    @pytest.mark.parametrize("bad_sigma", [0.0, -1.0])
    def test_rejects_bad_sigma(self, bad_sigma):
        with pytest.raises(ValueError):
            squared_norm_interval(bad_sigma, 100)

    def test_rejects_bad_dimension(self):
        with pytest.raises(ValueError):
            squared_norm_interval(1.0, 0)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            squared_norm_interval(1.0, 100, k=0.0)


class TestNormInterval:
    def test_is_square_root_of_squared_interval(self):
        sigma, d = 0.9, 2500
        sq_low, sq_high = squared_norm_interval(sigma, d)
        low, high = norm_interval(sigma, d)
        assert low == pytest.approx(math.sqrt(sq_low))
        assert high == pytest.approx(math.sqrt(sq_high))

    def test_contains_sigma_sqrt_d(self):
        sigma, d = 1.1, 5000
        low, high = norm_interval(sigma, d)
        assert low < sigma * math.sqrt(d) < high

    def test_ordering(self):
        low, high = norm_interval(2.0, 1234)
        assert 0.0 <= low < high

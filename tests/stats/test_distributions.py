"""Tests for the Gaussian CDF / quantile helpers (cross-checked against SciPy)."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.stats.distributions import normal_cdf, normal_ppf


class TestNormalCdf:
    def test_matches_scipy_standard_normal(self):
        x = np.linspace(-5, 5, 101)
        np.testing.assert_allclose(normal_cdf(x), scipy_stats.norm.cdf(x), atol=1e-12)

    def test_matches_scipy_scaled(self):
        x = np.linspace(-3, 3, 51)
        np.testing.assert_allclose(
            normal_cdf(x, sigma=2.5), scipy_stats.norm.cdf(x, scale=2.5), atol=1e-12
        )

    def test_matches_scipy_shifted(self):
        x = np.linspace(-3, 7, 51)
        np.testing.assert_allclose(
            normal_cdf(x, sigma=1.5, mu=2.0),
            scipy_stats.norm.cdf(x, loc=2.0, scale=1.5),
            atol=1e-12,
        )

    def test_symmetry(self):
        assert normal_cdf(0.0) == pytest.approx(0.5)
        assert float(normal_cdf(1.3)) == pytest.approx(1.0 - float(normal_cdf(-1.3)))

    def test_monotone(self):
        x = np.linspace(-4, 4, 200)
        values = normal_cdf(x, sigma=0.7)
        assert np.all(np.diff(values) >= 0)

    def test_scalar_input(self):
        assert float(normal_cdf(0.0, sigma=3.0)) == pytest.approx(0.5)

    def test_rejects_nonpositive_sigma(self):
        with pytest.raises(ValueError):
            normal_cdf(0.0, sigma=0.0)


class TestNormalPpf:
    @pytest.mark.parametrize("p", [0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999])
    def test_matches_scipy(self, p):
        assert normal_ppf(p) == pytest.approx(scipy_stats.norm.ppf(p), abs=1e-7)

    @pytest.mark.parametrize("p", [0.05, 0.5, 0.95])
    def test_matches_scipy_scaled(self, p):
        assert normal_ppf(p, sigma=3.0, mu=-1.0) == pytest.approx(
            scipy_stats.norm.ppf(p, loc=-1.0, scale=3.0), abs=1e-6
        )

    def test_median_is_mean(self):
        assert normal_ppf(0.5, sigma=2.0, mu=7.0) == pytest.approx(7.0, abs=1e-9)

    def test_is_inverse_of_cdf(self):
        for p in (0.02, 0.3, 0.7, 0.98):
            assert float(normal_cdf(normal_ppf(p, sigma=1.7), sigma=1.7)) == pytest.approx(
                p, abs=1e-8
            )

    def test_rejects_p_outside_open_interval(self):
        with pytest.raises(ValueError):
            normal_ppf(0.0)
        with pytest.raises(ValueError):
            normal_ppf(1.0)

    def test_rejects_nonpositive_sigma(self):
        with pytest.raises(ValueError):
            normal_ppf(0.5, sigma=-1.0)

    def test_extreme_tails_are_finite(self):
        assert np.isfinite(normal_ppf(1e-9))
        assert np.isfinite(normal_ppf(1.0 - 1e-9))

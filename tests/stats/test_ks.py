"""Tests for the one-sample Kolmogorov-Smirnov machinery (Section 4.3, Theorem 2)."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.stats.ks import (
    critical_statistic,
    kolmogorov_survival,
    ks_envelopes,
    ks_statistic,
    ks_test,
    theorem2_interval,
)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(99)


class TestKsStatistic:
    def test_matches_scipy_standard(self, rng):
        samples = rng.normal(size=500)
        ours = ks_statistic(samples, sigma=1.0)
        theirs = scipy_stats.kstest(samples, "norm").statistic
        assert ours == pytest.approx(theirs, abs=1e-12)

    def test_matches_scipy_scaled(self, rng):
        samples = rng.normal(scale=2.3, size=800)
        ours = ks_statistic(samples, sigma=2.3)
        theirs = scipy_stats.kstest(samples, "norm", args=(0.0, 2.3)).statistic
        assert ours == pytest.approx(theirs, abs=1e-12)

    def test_statistic_in_unit_interval(self, rng):
        samples = rng.normal(size=100)
        assert 0.0 <= ks_statistic(samples, sigma=1.0) <= 1.0

    def test_large_for_wrong_scale(self, rng):
        samples = rng.normal(scale=5.0, size=1000)
        assert ks_statistic(samples, sigma=1.0) > 0.3

    def test_large_for_shifted_samples(self, rng):
        samples = rng.normal(loc=3.0, size=1000)
        assert ks_statistic(samples, sigma=1.0) > 0.5

    def test_order_invariant(self, rng):
        samples = rng.normal(size=200)
        shuffled = samples.copy()
        rng.shuffle(shuffled)
        assert ks_statistic(samples, 1.0) == pytest.approx(ks_statistic(shuffled, 1.0))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ks_statistic(np.array([]), sigma=1.0)

    def test_constant_sample_has_large_statistic(self):
        assert ks_statistic(np.zeros(100), sigma=1.0) == pytest.approx(0.5)


class TestKolmogorovSurvival:
    def test_zero_or_negative_argument_gives_one(self):
        assert kolmogorov_survival(0.0) == 1.0
        assert kolmogorov_survival(-1.0) == 1.0

    def test_matches_scipy_kstwobign(self):
        for lam in (0.5, 0.8, 1.0, 1.36, 1.63, 2.0):
            assert kolmogorov_survival(lam) == pytest.approx(
                scipy_stats.kstwobign.sf(lam), abs=1e-9
            )

    def test_monotone_decreasing(self):
        values = [kolmogorov_survival(lam) for lam in np.linspace(0.3, 3.0, 30)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_bounded_in_unit_interval(self):
        for lam in (0.1, 1.0, 5.0):
            assert 0.0 <= kolmogorov_survival(lam) <= 1.0

    def test_known_critical_value(self):
        """Q(1.358) is approximately 0.05 (the classic 5% critical value)."""
        assert kolmogorov_survival(1.358) == pytest.approx(0.05, abs=5e-4)


class TestKsTest:
    def test_gaussian_sample_usually_passes(self, rng):
        """Noise drawn from the null distribution should rarely be rejected."""
        rejections = 0
        for _ in range(40):
            samples = rng.normal(scale=1.5, size=2000)
            if ks_test(samples, sigma=1.5).pvalue < 0.05:
                rejections += 1
        assert rejections <= 6  # ~5% expected, allow slack

    def test_pvalue_matches_scipy_asymptotic(self, rng):
        samples = rng.normal(size=3000)
        ours = ks_test(samples, sigma=1.0)
        theirs = scipy_stats.kstest(samples, "norm", mode="asymp")
        assert ours.pvalue == pytest.approx(theirs.pvalue, abs=2e-2)

    def test_wrong_sigma_is_rejected(self, rng):
        samples = rng.normal(scale=2.0, size=2000)
        assert ks_test(samples, sigma=1.0).pvalue < 1e-6

    def test_uniform_sample_is_rejected(self, rng):
        samples = rng.uniform(-1, 1, size=2000)
        assert ks_test(samples, sigma=1.0).pvalue < 0.01

    def test_result_fields(self, rng):
        samples = rng.normal(size=64)
        result = ks_test(samples, sigma=1.0)
        assert result.sample_size == 64
        assert 0.0 <= result.pvalue <= 1.0
        assert 0.0 <= result.statistic <= 1.0


class TestCriticalStatistic:
    def test_passes_exactly_at_critical_value(self):
        d = 2000
        critical = critical_statistic(d, significance=0.05)
        sqrt_d = np.sqrt(d)
        lam = (sqrt_d + 0.12 + 0.11 / sqrt_d) * critical
        assert kolmogorov_survival(lam) == pytest.approx(0.05, abs=1e-4)

    def test_decreases_with_sample_size(self):
        assert critical_statistic(10_000) < critical_statistic(100)

    def test_stricter_significance_gives_larger_threshold(self):
        assert critical_statistic(1000, 0.01) > critical_statistic(1000, 0.10)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            critical_statistic(0)
        with pytest.raises(ValueError):
            critical_statistic(100, significance=1.5)


class TestEnvelopes:
    def test_band_contains_cdf(self, rng):
        x = np.linspace(-3, 3, 50)
        upper, lower = ks_envelopes(x, sigma=1.0, d_ks=0.05)
        from repro.stats.distributions import normal_cdf

        cdf = normal_cdf(x)
        assert np.all(upper >= cdf)
        assert np.all(lower <= cdf)

    def test_band_width_is_two_dks_in_interior(self):
        upper, lower = ks_envelopes(np.array([0.0]), sigma=1.0, d_ks=0.03)
        assert float(upper[0] - lower[0]) == pytest.approx(0.06)

    def test_clamped_to_unit_interval(self):
        x = np.array([-10.0, 10.0])
        upper, lower = ks_envelopes(x, sigma=1.0, d_ks=0.2)
        assert np.all(upper <= 1.0)
        assert np.all(lower >= 0.0)


class TestTheorem2Interval:
    def test_interval_is_ordered(self):
        d = 1000
        d_ks = critical_statistic(d)
        for k in (1, 100, 500, 900, 1000):
            low, high = theorem2_interval(k, d, sigma=1.0, d_ks=d_ks)
            assert low < high

    def test_gaussian_order_statistics_satisfy_theorem(self, rng):
        """Order statistics of a genuine Gaussian sample respect the envelope."""
        d = 2000
        sigma = 1.3
        d_ks = critical_statistic(d, 0.05)
        sample = np.sort(rng.normal(scale=sigma, size=d))
        violations = 0
        for k in range(1, d + 1, 50):
            low, high = theorem2_interval(k, d, sigma, d_ks)
            if not low <= sample[k - 1] <= high:
                violations += 1
        assert violations == 0

    def test_extreme_order_statistics_unbounded(self):
        d = 1000
        d_ks = 0.05
        low, _ = theorem2_interval(1, d, sigma=1.0, d_ks=d_ks)
        _, high = theorem2_interval(d, d, sigma=1.0, d_ks=d_ks)
        assert low == -np.inf
        assert high == np.inf

    def test_interior_interval_is_finite(self):
        d = 1000
        low, high = theorem2_interval(500, d, sigma=1.0, d_ks=0.04)
        assert np.isfinite(low) and np.isfinite(high)

    def test_rejects_k_out_of_range(self):
        with pytest.raises(ValueError):
            theorem2_interval(0, 100, 1.0, 0.05)
        with pytest.raises(ValueError):
            theorem2_interval(101, 100, 1.0, 0.05)

    def test_rejects_bad_dks(self):
        with pytest.raises(ValueError):
            theorem2_interval(5, 100, 1.0, 0.0)
        with pytest.raises(ValueError):
            theorem2_interval(5, 100, 1.0, 1.0)

    def test_interval_scales_with_sigma(self):
        low1, high1 = theorem2_interval(500, 1000, sigma=1.0, d_ks=0.04)
        low2, high2 = theorem2_interval(500, 1000, sigma=2.0, d_ks=0.04)
        assert low2 == pytest.approx(2.0 * low1)
        assert high2 == pytest.approx(2.0 * high1)

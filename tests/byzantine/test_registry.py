"""Tests for the attack registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.byzantine.adaptive import AdaptiveAttack
from repro.byzantine.gaussian import GaussianAttack
from repro.byzantine.label_flip import LabelFlipAttack
from repro.byzantine.lmp import LocalModelPoisoningAttack
from repro.byzantine.registry import available_attacks, build_attack
from repro.data.synthetic import make_classification


class TestRegistry:
    def test_paper_attacks_available(self):
        names = available_attacks()
        for name in ("gaussian", "label_flip", "lmp", "alittle", "inner", "none"):
            assert name in names

    def test_adaptive_variants_listed(self):
        names = available_attacks()
        assert "adaptive_gaussian" in names
        assert "adaptive_label_flip" in names
        assert "adaptive_none" not in names

    @pytest.mark.parametrize("name", ["gaussian", "label_flip", "lmp", "alittle", "inner"])
    def test_build_each_attack(self, name):
        attack = build_attack(name)
        assert attack is not None

    def test_build_gaussian_type(self):
        assert isinstance(build_attack("gaussian"), GaussianAttack)

    def test_build_label_flip_type(self):
        assert isinstance(build_attack("label_flip"), LabelFlipAttack)

    def test_build_lmp_type(self):
        assert isinstance(build_attack("lmp"), LocalModelPoisoningAttack)

    def test_build_adaptive_wraps_base(self):
        attack = build_attack("adaptive_gaussian", ttbb=0.6)
        assert isinstance(attack, AdaptiveAttack)
        assert isinstance(attack.inner, GaussianAttack)
        assert attack.ttbb == 0.6

    def test_build_forwards_kwargs(self):
        attack = build_attack("lmp", lambda_override=2.0)
        assert attack.lambda_override == 2.0

    def test_none_attack_ignores_kwargs(self):
        """Grids sweep attack names with shared kwargs; 'none' must tolerate them."""
        attack = build_attack("none", scale=2.0)
        assert attack.follows_protocol

    def test_none_attack_behaves_honestly(self):
        """The 'none' attack follows the protocol and leaves data untouched."""
        attack = build_attack("none")
        assert attack.follows_protocol
        dataset = make_classification(20, 4, 2, rng=np.random.default_rng(0))
        poisoned = attack.poison_dataset(dataset)
        np.testing.assert_array_equal(poisoned.labels, dataset.labels)

    def test_unknown_attack_raises(self):
        with pytest.raises(KeyError):
            build_attack("quantum")

    def test_unknown_adaptive_base_raises(self):
        with pytest.raises(KeyError):
            build_attack("adaptive_quantum")

"""Tests for the Byzantine attack implementations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.byzantine.adaptive import AdaptiveAttack
from repro.byzantine.alittle import ALittleAttack
from repro.byzantine.base import Attack
from repro.byzantine.gaussian import GaussianAttack
from repro.byzantine.inner import InnerProductAttack
from repro.byzantine.label_flip import LabelFlipAttack
from repro.byzantine.lmp import LocalModelPoisoningAttack
from repro.data.synthetic import make_classification
from tests.helpers import make_attack_context


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(67)


@pytest.fixture
def honest_uploads(rng) -> np.ndarray:
    """Ten honest uploads sharing a common direction plus noise."""
    direction = rng.normal(size=200)
    direction /= np.linalg.norm(direction)
    return 0.5 * direction + 0.05 * rng.normal(size=(10, 200))


class TestAttackBase:
    def test_default_poison_is_identity(self, rng):
        dataset = make_classification(30, 4, 3, rng=rng)
        assert Attack().poison_dataset(dataset) is dataset

    def test_default_craft_not_implemented(self, honest_uploads):
        with pytest.raises(NotImplementedError):
            Attack().craft(make_attack_context(honest_uploads, 2))

    def test_default_always_active(self):
        assert Attack().is_active(0, 100)
        assert Attack().is_active(99, 100)

    def test_name(self):
        assert GaussianAttack().name == "GaussianAttack"


class TestGaussianAttack:
    def test_shape(self, honest_uploads):
        context = make_attack_context(honest_uploads, 4, upload_noise_std=0.1)
        crafted = GaussianAttack().craft(context)
        assert crafted.shape == (4, 200)

    def test_uses_protocol_noise_scale(self, honest_uploads):
        context = make_attack_context(honest_uploads, 50, upload_noise_std=0.3)
        crafted = GaussianAttack().craft(context)
        assert crafted.std() == pytest.approx(0.3, rel=0.1)

    def test_explicit_scale(self, honest_uploads):
        context = make_attack_context(honest_uploads, 50, upload_noise_std=0.3)
        crafted = GaussianAttack(scale=1.0).craft(context)
        assert crafted.std() == pytest.approx(1.0, rel=0.1)

    def test_falls_back_to_empirical_std_without_dp(self, honest_uploads):
        context = make_attack_context(honest_uploads, 30, upload_noise_std=0.0)
        crafted = GaussianAttack().craft(context)
        assert crafted.std() == pytest.approx(float(honest_uploads.std()), rel=0.2)

    def test_zero_mean(self, honest_uploads):
        context = make_attack_context(honest_uploads, 100, upload_noise_std=0.2)
        crafted = GaussianAttack().craft(context)
        assert abs(crafted.mean()) < 0.01

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            GaussianAttack(scale=0.0)

    def test_does_not_follow_protocol(self):
        assert not GaussianAttack().follows_protocol


class TestLabelFlipAttack:
    def test_follows_protocol(self):
        assert LabelFlipAttack().follows_protocol

    def test_poisons_labels(self, rng):
        dataset = make_classification(60, 5, 4, rng=rng)
        poisoned = LabelFlipAttack().poison_dataset(dataset)
        np.testing.assert_array_equal(poisoned.labels, 3 - dataset.labels)

    def test_preserves_features(self, rng):
        dataset = make_classification(60, 5, 4, rng=rng)
        poisoned = LabelFlipAttack().poison_dataset(dataset)
        np.testing.assert_array_equal(poisoned.features, dataset.features)


class TestLocalModelPoisoning:
    def test_shape(self, honest_uploads):
        context = make_attack_context(honest_uploads, 15)
        crafted = LocalModelPoisoningAttack().craft(context)
        assert crafted.shape == (15, 200)

    def test_all_byzantine_uploads_identical(self, honest_uploads):
        """Equation 10 sets every Byzantine upload to the same vector."""
        context = make_attack_context(honest_uploads, 15)
        crafted = LocalModelPoisoningAttack().craft(context)
        for row in crafted[1:]:
            np.testing.assert_array_equal(row, crafted[0])

    def test_inverts_aggregate_direction(self, honest_uploads):
        """Equation 9: sum of all uploads points opposite the benign sum."""
        n_byzantine = 15
        context = make_attack_context(honest_uploads, n_byzantine)
        crafted = LocalModelPoisoningAttack().craft(context)
        benign_sum = honest_uploads.sum(axis=0)
        total = benign_sum + crafted.sum(axis=0)
        assert float(np.dot(total, benign_sum)) < 0.0

    def test_lambda_matches_paper_formula(self):
        attack = LocalModelPoisoningAttack()
        assert attack.effective_lambda(n_byzantine=15, n_honest=9) == pytest.approx(
            15 / 3.0 - 1.0
        )

    def test_lambda_clamped_when_too_few_byzantine(self):
        """The strong attack needs M_n > sqrt(B_m); below that lambda = 0."""
        attack = LocalModelPoisoningAttack()
        assert attack.effective_lambda(n_byzantine=2, n_honest=16) == 0.0

    def test_lambda_override(self):
        attack = LocalModelPoisoningAttack(lambda_override=3.0)
        assert attack.effective_lambda(5, 100) == 3.0

    def test_rejects_negative_override(self):
        with pytest.raises(ValueError):
            LocalModelPoisoningAttack(lambda_override=-1.0)

    def test_no_honest_uploads_gives_zeros(self, rng):
        context = make_attack_context(np.zeros((0, 50)), 3)
        crafted = LocalModelPoisoningAttack().craft(context)
        np.testing.assert_array_equal(crafted, 0.0)

    def test_equation10_value(self, honest_uploads):
        n_byzantine = 15
        context = make_attack_context(honest_uploads, n_byzantine)
        attack = LocalModelPoisoningAttack()
        crafted = attack.craft(context)
        lam = attack.effective_lambda(n_byzantine, honest_uploads.shape[0])
        expected = -(1.0 + lam) / n_byzantine * honest_uploads.sum(axis=0)
        np.testing.assert_allclose(crafted[0], expected)


class TestALittleAttack:
    def test_shape(self, honest_uploads):
        context = make_attack_context(honest_uploads, 5)
        assert ALittleAttack().craft(context).shape == (5, 200)

    def test_stays_within_benign_spread(self, honest_uploads):
        """The attack is 'a little': within z standard deviations of the mean."""
        context = make_attack_context(honest_uploads, 4)
        crafted = ALittleAttack(z=1.0).craft(context)
        mean = honest_uploads.mean(axis=0)
        std = honest_uploads.std(axis=0)
        assert np.all(np.abs(crafted[0] - mean) <= std + 1e-9)

    def test_explicit_z_shift(self, honest_uploads):
        context = make_attack_context(honest_uploads, 2)
        crafted = ALittleAttack(z=2.0).craft(context)
        expected = honest_uploads.mean(axis=0) - 2.0 * honest_uploads.std(axis=0)
        np.testing.assert_allclose(crafted[0], expected)

    def test_default_z_is_positive(self):
        attack = ALittleAttack()
        assert attack._default_z(n_total=25, n_byzantine=10) > 0.0  # noqa: SLF001

    def test_no_honest_gives_zeros(self):
        context = make_attack_context(np.zeros((0, 10)), 2)
        np.testing.assert_array_equal(ALittleAttack().craft(context), 0.0)


class TestInnerProductAttack:
    def test_negatively_scales_benign_mean(self, honest_uploads):
        context = make_attack_context(honest_uploads, 3)
        crafted = InnerProductAttack(epsilon_scale=2.0).craft(context)
        expected = -2.0 * honest_uploads.mean(axis=0)
        np.testing.assert_allclose(crafted[0], expected)

    def test_negative_inner_product_with_benign_mean(self, honest_uploads):
        context = make_attack_context(honest_uploads, 3)
        crafted = InnerProductAttack().craft(context)
        mean = honest_uploads.mean(axis=0)
        assert float(np.dot(crafted[0], mean)) < 0.0

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            InnerProductAttack(epsilon_scale=0.0)

    def test_no_honest_gives_zeros(self):
        context = make_attack_context(np.zeros((0, 10)), 2)
        np.testing.assert_array_equal(InnerProductAttack().craft(context), 0.0)


class TestAdaptiveAttack:
    def test_dormant_before_ttbb(self):
        attack = AdaptiveAttack(GaussianAttack(), ttbb=0.5)
        assert not attack.is_active(round_index=0, total_rounds=100)
        assert not attack.is_active(round_index=49, total_rounds=100)

    def test_active_after_ttbb(self):
        attack = AdaptiveAttack(GaussianAttack(), ttbb=0.5)
        assert attack.is_active(round_index=50, total_rounds=100)
        assert attack.is_active(round_index=99, total_rounds=100)

    def test_ttbb_zero_always_active(self):
        attack = AdaptiveAttack(LabelFlipAttack(), ttbb=0.0)
        assert attack.is_active(0, 10)

    def test_rejects_bad_ttbb(self):
        with pytest.raises(ValueError):
            AdaptiveAttack(GaussianAttack(), ttbb=1.5)

    def test_delegates_follows_protocol(self):
        assert AdaptiveAttack(LabelFlipAttack(), 0.2).follows_protocol
        assert not AdaptiveAttack(GaussianAttack(), 0.2).follows_protocol

    def test_delegates_poison(self, rng):
        dataset = make_classification(40, 4, 3, rng=rng)
        attack = AdaptiveAttack(LabelFlipAttack(), 0.2)
        poisoned = attack.poison_dataset(dataset)
        np.testing.assert_array_equal(poisoned.labels, 2 - dataset.labels)

    def test_delegates_craft(self, honest_uploads):
        context = make_attack_context(honest_uploads, 3)
        adaptive = AdaptiveAttack(InnerProductAttack(), 0.2).craft(context)
        direct = InnerProductAttack().craft(context)
        np.testing.assert_allclose(adaptive, direct)

    def test_copy_honest_copies_real_uploads(self, honest_uploads):
        context = make_attack_context(honest_uploads, 5, seed=2)
        copies = AdaptiveAttack(GaussianAttack(), 0.5).copy_honest(context)
        assert copies.shape == (5, 200)
        honest_rows = {tuple(np.round(row, 9)) for row in honest_uploads}
        for row in copies:
            assert tuple(np.round(row, 9)) in honest_rows

    def test_name_mentions_inner_attack(self):
        name = AdaptiveAttack(GaussianAttack(), 0.4).name
        assert "GaussianAttack" in name and "0.4" in name

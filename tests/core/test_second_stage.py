"""Tests for the second-stage aggregation (Algorithm 3, lines 4-14)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.second_stage import SecondStageSelector


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(13)


def make_uploads(
    rng: np.random.Generator,
    server_gradient: np.ndarray,
    n_honest: int,
    n_byzantine: int,
    noise: float = 0.5,
) -> list[np.ndarray]:
    """Honest uploads roughly aligned with the server gradient, Byzantine ones inverted."""
    dimension = server_gradient.size
    uploads = []
    for _ in range(n_honest):
        uploads.append(server_gradient + noise * rng.normal(size=dimension))
    for _ in range(n_byzantine):
        uploads.append(-2.0 * server_gradient + noise * rng.normal(size=dimension))
    return uploads


class TestConstruction:
    def test_keep_count(self):
        assert SecondStageSelector(n_workers=25, gamma=0.4).keep == 10
        assert SecondStageSelector(n_workers=10, gamma=0.5).keep == 5
        assert SecondStageSelector(n_workers=7, gamma=0.3).keep == 3  # ceil(2.1)

    def test_keep_at_least_one(self):
        assert SecondStageSelector(n_workers=3, gamma=0.01).keep == 1

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            SecondStageSelector(0, 0.5)
        with pytest.raises(ValueError):
            SecondStageSelector(5, 0.0)
        with pytest.raises(ValueError):
            SecondStageSelector(5, 1.5)

    def test_initial_scores_zero(self):
        selector = SecondStageSelector(5, 0.5)
        np.testing.assert_array_equal(selector.accumulated_scores, 0.0)


class TestSelection:
    def test_selects_honest_majority_aligned_uploads(self, rng):
        dimension = 50
        server_gradient = rng.normal(size=dimension)
        uploads = make_uploads(rng, server_gradient, n_honest=6, n_byzantine=4)
        selector = SecondStageSelector(n_workers=10, gamma=0.6)
        report = selector.select(uploads, server_gradient)
        assert set(report.selected) == set(range(6))

    def test_selects_honest_even_when_byzantine_majority(self, rng):
        """The paper's key property: no restriction on gamma being > 0.5."""
        dimension = 60
        server_gradient = rng.normal(size=dimension)
        uploads = make_uploads(rng, server_gradient, n_honest=4, n_byzantine=16)
        selector = SecondStageSelector(n_workers=20, gamma=0.2)
        report = selector.select(uploads, server_gradient)
        assert set(report.selected) == set(range(4))

    def test_scores_are_inner_products(self, rng):
        dimension = 20
        server_gradient = rng.normal(size=dimension)
        uploads = [rng.normal(size=dimension) for _ in range(5)]
        selector = SecondStageSelector(5, 0.6)
        report = selector.select(uploads, server_gradient)
        expected = [float(np.dot(upload, server_gradient)) for upload in uploads]
        np.testing.assert_allclose(report.scores, expected)

    def test_threshold_is_mean_of_top_scores(self, rng):
        dimension = 20
        server_gradient = rng.normal(size=dimension)
        uploads = [rng.normal(size=dimension) for _ in range(8)]
        selector = SecondStageSelector(8, 0.5)
        report = selector.select(uploads, server_gradient)
        top = np.sort(report.scores)[::-1][:4]
        assert report.threshold == pytest.approx(float(top.mean()))

    def test_negative_scores_never_accumulate(self, rng):
        dimension = 30
        server_gradient = rng.normal(size=dimension)
        uploads = make_uploads(rng, server_gradient, n_honest=3, n_byzantine=3, noise=0.1)
        selector = SecondStageSelector(6, 0.5)
        report = selector.select(uploads, server_gradient)
        assert np.all(report.accumulated[3:] <= 0.0 + 1e-12)
        assert np.all(report.accumulated[3:] >= 0.0)  # suppressed to exactly zero

    def test_scores_accumulate_across_rounds(self, rng):
        dimension = 30
        server_gradient = rng.normal(size=dimension)
        selector = SecondStageSelector(6, 0.5)
        uploads = make_uploads(rng, server_gradient, n_honest=3, n_byzantine=3, noise=0.1)
        first = selector.select(uploads, server_gradient)
        second = selector.select(uploads, server_gradient)
        assert np.all(second.accumulated >= first.accumulated - 1e-12)
        assert second.accumulated[0] > first.accumulated[0]

    def test_accumulated_history_heals_one_bad_round(self, rng):
        """A worker misranked in one noisy round is still selected thanks to S."""
        dimension = 40
        server_gradient = rng.normal(size=dimension)
        selector = SecondStageSelector(4, 0.5)
        good = [server_gradient + 0.05 * rng.normal(size=dimension) for _ in range(2)]
        bad = [-server_gradient for _ in range(2)]
        # several good rounds build up score for workers 0 and 1
        for _ in range(5):
            selector.select(good + bad, server_gradient)
        # one adversarial round where worker 0 looks slightly worse than worker 2
        confusing = [
            -0.1 * server_gradient,
            server_gradient,
            0.2 * server_gradient,
            -server_gradient,
        ]
        report = selector.select(confusing, server_gradient)
        assert 0 in report.selected and 1 in report.selected

    def test_reset_clears_accumulated_scores(self, rng):
        dimension = 10
        server_gradient = rng.normal(size=dimension)
        selector = SecondStageSelector(3, 0.5)
        selector.select([server_gradient] * 3, server_gradient)
        selector.reset()
        np.testing.assert_array_equal(selector.accumulated_scores, 0.0)

    def test_rejects_wrong_upload_count(self, rng):
        selector = SecondStageSelector(4, 0.5)
        with pytest.raises(ValueError):
            selector.select([np.zeros(5)] * 3, np.zeros(5))

    def test_selected_count_is_keep(self, rng):
        dimension = 25
        server_gradient = rng.normal(size=dimension)
        uploads = [rng.normal(size=dimension) for _ in range(10)]
        selector = SecondStageSelector(10, 0.3)
        report = selector.select(uploads, server_gradient)
        assert len(report.selected) == selector.keep == 3

    def test_selected_indices_sorted_and_unique(self, rng):
        dimension = 25
        server_gradient = rng.normal(size=dimension)
        uploads = [rng.normal(size=dimension) for _ in range(10)]
        selector = SecondStageSelector(10, 0.5)
        report = selector.select(uploads, server_gradient)
        assert list(report.selected) == sorted(set(report.selected.tolist()))

    def test_zero_uploads_from_first_stage_score_zero(self, rng):
        """Rejected (zeroed) first-stage uploads can never win the selection."""
        dimension = 30
        server_gradient = rng.normal(size=dimension)
        honest = [server_gradient + 0.1 * rng.normal(size=dimension) for _ in range(3)]
        zeroed = [np.zeros(dimension) for _ in range(3)]
        selector = SecondStageSelector(6, 0.5)
        report = selector.select(honest + zeroed, server_gradient)
        assert set(report.selected) == {0, 1, 2}

"""Tests for the client-side DP protocol (Algorithm 1, lines 4-12)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DPConfig
from repro.core.dp_protocol import (
    BatchedDPState,
    LocalDPState,
    local_update,
    local_update_batch,
    noise_to_signal_ratio,
    upload_noise_std,
)
from repro.privacy.mechanisms import (
    clip_gradients,
    gaussian_noise,
    normalize_gradients,
)
from tests.helpers import make_model_and_data


@pytest.fixture
def model_and_data():
    return make_model_and_data(seed=0)


class TestLocalDPState:
    def test_initially_empty(self):
        state = LocalDPState()
        assert state.momentum.shape == (0, 0)

    def test_ensure_shape_initialises_zeros(self):
        state = LocalDPState()
        state.ensure_shape(8, 20)
        assert state.momentum.shape == (8, 20)
        np.testing.assert_array_equal(state.momentum, 0.0)

    def test_ensure_shape_keeps_existing_state(self):
        state = LocalDPState()
        state.ensure_shape(4, 10)
        state.momentum += 1.0
        state.ensure_shape(4, 10)
        np.testing.assert_array_equal(state.momentum, 1.0)

    def test_ensure_shape_resets_on_mismatch(self):
        state = LocalDPState()
        state.ensure_shape(4, 10)
        state.momentum += 1.0
        state.ensure_shape(4, 12)
        np.testing.assert_array_equal(state.momentum, 0.0)


class TestLocalUpdate:
    def test_upload_shape(self, model_and_data):
        model, dataset = model_and_data
        config = DPConfig(batch_size=8, sigma=1.0)
        upload = local_update(model, dataset, LocalDPState(), config, np.random.default_rng(0))
        assert upload.shape == (model.num_parameters,)

    def test_noiseless_upload_norm_at_most_one(self, model_and_data):
        """With sigma = 0 the upload is an average of unit vectors."""
        model, dataset = model_and_data
        config = DPConfig(batch_size=8, sigma=0.0, momentum=0.0)
        upload = local_update(model, dataset, LocalDPState(), config, np.random.default_rng(0))
        assert np.linalg.norm(upload) <= 1.0 + 1e-9

    def test_noiseless_clip_upload_norm_at_most_clip(self, model_and_data):
        model, dataset = model_and_data
        config = DPConfig(batch_size=8, sigma=0.0, momentum=0.0, bounding="clip", clip_norm=0.5)
        upload = local_update(model, dataset, LocalDPState(), config, np.random.default_rng(0))
        assert np.linalg.norm(upload) <= 0.5 + 1e-9

    def test_upload_statistics_match_dp_noise(self, model_and_data):
        """With large sigma the upload is approximately N(0, (sigma/b)^2 I)."""
        model, dataset = model_and_data
        config = DPConfig(batch_size=16, sigma=20.0, momentum=0.0)
        rng = np.random.default_rng(1)
        upload = local_update(model, dataset, LocalDPState(), config, rng)
        expected_std = upload_noise_std(config)
        assert upload.std() == pytest.approx(expected_std, rel=0.3)

    def test_momentum_state_updated(self, model_and_data):
        model, dataset = model_and_data
        config = DPConfig(batch_size=4, sigma=1.0)
        state = LocalDPState()
        upload = local_update(model, dataset, state, config, np.random.default_rng(0))
        # Algorithm 1 line 11: every slot is overwritten with the upload.
        assert state.momentum.shape == (4, model.num_parameters)
        for slot in state.momentum:
            np.testing.assert_array_equal(slot, upload)

    def test_momentum_carries_across_rounds(self, model_and_data):
        """With beta > 0 the previous upload influences the next one."""
        model, dataset = model_and_data
        config = DPConfig(batch_size=8, sigma=0.0, momentum=0.9)
        state_a = LocalDPState()
        state_b = LocalDPState()
        rng_a = np.random.default_rng(3)
        rng_b = np.random.default_rng(3)
        first = local_update(model, dataset, state_a, config, rng_a)
        local_update(model, dataset, state_b, config, rng_b)
        # Warm state: second update differs from a cold-state update with the
        # same generator stream.
        second_warm = local_update(model, dataset, state_a, config, rng_a)
        second_cold = local_update(model, dataset, LocalDPState(), config, rng_b)
        assert not np.allclose(second_warm, second_cold)
        assert first.shape == second_warm.shape

    def test_deterministic_given_generator(self, model_and_data):
        model, dataset = model_and_data
        config = DPConfig(batch_size=8, sigma=1.0)
        a = local_update(model, dataset, LocalDPState(), config, np.random.default_rng(5))
        b = local_update(model, dataset, LocalDPState(), config, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_different_noise_across_calls(self, model_and_data):
        model, dataset = model_and_data
        config = DPConfig(batch_size=8, sigma=1.0)
        rng = np.random.default_rng(5)
        a = local_update(model, dataset, LocalDPState(), config, rng)
        b = local_update(model, dataset, LocalDPState(), config, rng)
        assert not np.allclose(a, b)

    def test_normalize_mode_independent_of_gradient_scale(self, model_and_data):
        """Normalisation makes the (noiseless) upload invariant to loss scaling."""
        model, dataset = model_and_data
        config = DPConfig(batch_size=8, sigma=0.0, momentum=0.0)
        upload = local_update(
            model, dataset, LocalDPState(), config, np.random.default_rng(0)
        )
        # Scale all parameters: the per-example gradients change magnitude but
        # their directions (and thus the normalised average) change smoothly;
        # the upload still has norm at most 1.
        model.set_flat_parameters(model.get_flat_parameters() * 3.0)
        upload_scaled = local_update(
            model, dataset, LocalDPState(), config, np.random.default_rng(0)
        )
        assert np.linalg.norm(upload) <= 1.0 + 1e-9
        assert np.linalg.norm(upload_scaled) <= 1.0 + 1e-9


class TestBatchedDPState:
    def test_initially_empty(self):
        assert BatchedDPState().slot_momentum.shape == (0, 0)

    def test_ensure_shape_initialises_zeros(self):
        state = BatchedDPState()
        state.ensure_shape(3, 8, 20)
        assert state.slot_momentum.shape == (3, 20)
        assert state.batch_size == 8
        np.testing.assert_array_equal(state.slot_momentum, 0.0)

    def test_ensure_shape_keeps_existing_state(self):
        state = BatchedDPState()
        state.ensure_shape(2, 4, 10)
        state.slot_momentum += 1.0
        state.ensure_shape(2, 4, 10)
        np.testing.assert_array_equal(state.slot_momentum, 1.0)

    def test_ensure_shape_resets_on_mismatch(self):
        state = BatchedDPState()
        state.ensure_shape(2, 4, 10)
        state.slot_momentum += 1.0
        state.ensure_shape(3, 4, 10)
        np.testing.assert_array_equal(state.slot_momentum, 0.0)

    def test_ensure_shape_resets_on_batch_size_change(self):
        """The scalar protocol resets a (b, d)-mismatched momentum; the
        rank-1 state must do the same when only b changes."""
        state = BatchedDPState()
        state.ensure_shape(2, 4, 10)
        state.slot_momentum += 1.0
        state.ensure_shape(2, 8, 10)
        np.testing.assert_array_equal(state.slot_momentum, 0.0)

    def test_momentum_of_broadcasts_slots(self):
        state = BatchedDPState()
        state.ensure_shape(2, 4, 3)
        state.slot_momentum[1] = [1.0, 2.0, 3.0]
        view = state.momentum_of(1)
        assert view.shape == (4, 3)
        np.testing.assert_array_equal(view, np.tile([1.0, 2.0, 3.0], (4, 1)))


def scalar_protocol_step(per_example, momentum, config, rng):
    """The scalar :func:`local_update` pipeline minus the data sampling.

    Ground truth for the batched path: one worker's momentum update,
    sensitivity bounding, noise addition and slot overwrite, written exactly
    as ``local_update`` computes them.
    """
    momentum = (1.0 - config.momentum) * per_example + config.momentum * momentum
    if config.bounding == "normalize":
        bounded = normalize_gradients(momentum)
    else:
        bounded = clip_gradients(momentum, config.clip_norm)
    noise = gaussian_noise(per_example.shape[1], config.sigma, rng)
    upload = (bounded.sum(axis=0) + noise) / config.batch_size
    return upload, np.tile(upload, (config.batch_size, 1))


class TestLocalUpdateBatch:
    N_WORKERS, BATCH, DIM = 5, 8, 13

    def make_inputs(self, config, seed=0, n_workers=None):
        n = self.N_WORKERS if n_workers is None else n_workers
        rng = np.random.default_rng(seed)
        per_example = rng.normal(size=(n, config.batch_size, self.DIM))
        return per_example

    def run_both(self, config, per_example, warm_rounds=0, seed=100):
        """Run the batched path and the scalar reference on the same inputs."""
        n = per_example.shape[0]
        state = BatchedDPState()
        batch_rngs = [np.random.default_rng(seed + i) for i in range(n)]
        scalar_rngs = [np.random.default_rng(seed + i) for i in range(n)]
        scalar_momentum = [
            np.zeros((config.batch_size, self.DIM)) for _ in range(n)
        ]
        warm_rng = np.random.default_rng(999)
        for _ in range(warm_rounds + 1):
            grads = per_example + warm_rng.normal(size=per_example.shape)
            batched = local_update_batch(grads.copy(), state, config, batch_rngs)
            expected = []
            for i in range(n):
                upload, scalar_momentum[i] = scalar_protocol_step(
                    grads[i], scalar_momentum[i], config, scalar_rngs[i]
                )
                expected.append(upload)
        return batched, np.stack(expected), state

    def test_matches_scalar_pipeline(self):
        config = DPConfig(batch_size=self.BATCH, sigma=0.9)
        per_example = self.make_inputs(config)
        batched, expected, _ = self.run_both(config, per_example)
        np.testing.assert_array_equal(batched, expected)

    def test_matches_scalar_pipeline_warm_momentum(self):
        """Momentum carried across rounds matches the scalar recursion."""
        config = DPConfig(batch_size=self.BATCH, sigma=0.5, momentum=0.7)
        per_example = self.make_inputs(config, seed=3)
        batched, expected, _ = self.run_both(config, per_example, warm_rounds=3)
        np.testing.assert_array_equal(batched, expected)

    def test_matches_scalar_pipeline_clip_mode(self):
        config = DPConfig(
            batch_size=self.BATCH, sigma=0.4, bounding="clip", clip_norm=0.7
        )
        per_example = self.make_inputs(config, seed=5)
        batched, expected, _ = self.run_both(config, per_example)
        np.testing.assert_array_equal(batched, expected)

    def test_single_worker(self):
        config = DPConfig(batch_size=self.BATCH, sigma=1.1)
        per_example = self.make_inputs(config, seed=7, n_workers=1)
        batched, expected, _ = self.run_both(config, per_example)
        assert batched.shape == (1, self.DIM)
        np.testing.assert_array_equal(batched, expected)

    def test_zero_gradients_zero_sigma_upload_is_zero(self):
        config = DPConfig(batch_size=4, sigma=0.0, momentum=0.0)
        state = BatchedDPState()
        per_example = np.zeros((3, 4, self.DIM))
        uploads = local_update_batch(
            per_example, state, config, [np.random.default_rng(i) for i in range(3)]
        )
        np.testing.assert_array_equal(uploads, 0.0)

    def test_zero_sigma_upload_is_average_of_unit_vectors(self):
        config = DPConfig(batch_size=self.BATCH, sigma=0.0, momentum=0.0)
        per_example = self.make_inputs(config, seed=11)
        uploads = local_update_batch(
            per_example.copy(),
            BatchedDPState(),
            config,
            [np.random.default_rng(i) for i in range(self.N_WORKERS)],
        )
        norms = np.linalg.norm(uploads, axis=1)
        assert np.all(norms <= 1.0 + 1e-9)

    def test_slot_overwrite(self):
        """Line 11: every momentum slot ends up equal to its worker's upload."""
        config = DPConfig(batch_size=self.BATCH, sigma=0.8)
        per_example = self.make_inputs(config, seed=13)
        state = BatchedDPState()
        uploads = local_update_batch(
            per_example, state, config,
            [np.random.default_rng(i) for i in range(self.N_WORKERS)],
        )
        np.testing.assert_array_equal(state.slot_momentum, uploads)
        for index in range(self.N_WORKERS):
            np.testing.assert_array_equal(
                state.momentum_of(index),
                np.tile(uploads[index], (self.BATCH, 1)),
            )

    def test_rejects_bad_shapes(self):
        config = DPConfig(batch_size=4, sigma=1.0)
        rngs = [np.random.default_rng(0)]
        with pytest.raises(ValueError):
            local_update_batch(np.zeros((4, 5)), BatchedDPState(), config, rngs)
        with pytest.raises(ValueError):  # batch axis != config.batch_size
            local_update_batch(np.zeros((1, 3, 5)), BatchedDPState(), config, rngs)
        with pytest.raises(ValueError):  # wrong number of generators
            local_update_batch(np.zeros((2, 4, 5)), BatchedDPState(), config, rngs)


class TestNoiseHelpers:
    def test_upload_noise_std(self):
        config = DPConfig(batch_size=16, sigma=3.2)
        assert upload_noise_std(config) == pytest.approx(0.2)

    def test_upload_noise_std_zero_for_non_private(self):
        assert upload_noise_std(DPConfig(sigma=0.0)) == 0.0

    def test_noise_to_signal_ratio_formula(self):
        config = DPConfig(batch_size=16, sigma=2.0)
        ratio = noise_to_signal_ratio(config, dimension=6400)
        assert ratio == pytest.approx(2.0 * 80 / 16)

    def test_noise_to_signal_ratio_grows_with_dimension(self):
        config = DPConfig(batch_size=16, sigma=1.0)
        assert noise_to_signal_ratio(config, 10_000) > noise_to_signal_ratio(config, 100)

    def test_noise_to_signal_ratio_shrinks_with_batch(self):
        small_batch = DPConfig(batch_size=8, sigma=1.0)
        large_batch = DPConfig(batch_size=128, sigma=1.0)
        assert noise_to_signal_ratio(small_batch, 5000) > noise_to_signal_ratio(
            large_batch, 5000
        )

    def test_noise_to_signal_ratio_zero_without_dp(self):
        assert noise_to_signal_ratio(DPConfig(sigma=0.0), 100) == 0.0

    def test_noise_to_signal_ratio_rejects_bad_dimension(self):
        with pytest.raises(ValueError):
            noise_to_signal_ratio(DPConfig(), 0)

"""Tests for the client-side DP protocol (Algorithm 1, lines 4-12)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DPConfig
from repro.core.dp_protocol import (
    LocalDPState,
    local_update,
    noise_to_signal_ratio,
    upload_noise_std,
)
from tests.helpers import make_model_and_data


@pytest.fixture
def model_and_data():
    return make_model_and_data(seed=0)


class TestLocalDPState:
    def test_initially_empty(self):
        state = LocalDPState()
        assert state.momentum.shape == (0, 0)

    def test_ensure_shape_initialises_zeros(self):
        state = LocalDPState()
        state.ensure_shape(8, 20)
        assert state.momentum.shape == (8, 20)
        np.testing.assert_array_equal(state.momentum, 0.0)

    def test_ensure_shape_keeps_existing_state(self):
        state = LocalDPState()
        state.ensure_shape(4, 10)
        state.momentum += 1.0
        state.ensure_shape(4, 10)
        np.testing.assert_array_equal(state.momentum, 1.0)

    def test_ensure_shape_resets_on_mismatch(self):
        state = LocalDPState()
        state.ensure_shape(4, 10)
        state.momentum += 1.0
        state.ensure_shape(4, 12)
        np.testing.assert_array_equal(state.momentum, 0.0)


class TestLocalUpdate:
    def test_upload_shape(self, model_and_data):
        model, dataset = model_and_data
        config = DPConfig(batch_size=8, sigma=1.0)
        upload = local_update(model, dataset, LocalDPState(), config, np.random.default_rng(0))
        assert upload.shape == (model.num_parameters,)

    def test_noiseless_upload_norm_at_most_one(self, model_and_data):
        """With sigma = 0 the upload is an average of unit vectors."""
        model, dataset = model_and_data
        config = DPConfig(batch_size=8, sigma=0.0, momentum=0.0)
        upload = local_update(model, dataset, LocalDPState(), config, np.random.default_rng(0))
        assert np.linalg.norm(upload) <= 1.0 + 1e-9

    def test_noiseless_clip_upload_norm_at_most_clip(self, model_and_data):
        model, dataset = model_and_data
        config = DPConfig(batch_size=8, sigma=0.0, momentum=0.0, bounding="clip", clip_norm=0.5)
        upload = local_update(model, dataset, LocalDPState(), config, np.random.default_rng(0))
        assert np.linalg.norm(upload) <= 0.5 + 1e-9

    def test_upload_statistics_match_dp_noise(self, model_and_data):
        """With large sigma the upload is approximately N(0, (sigma/b)^2 I)."""
        model, dataset = model_and_data
        config = DPConfig(batch_size=16, sigma=20.0, momentum=0.0)
        rng = np.random.default_rng(1)
        upload = local_update(model, dataset, LocalDPState(), config, rng)
        expected_std = upload_noise_std(config)
        assert upload.std() == pytest.approx(expected_std, rel=0.3)

    def test_momentum_state_updated(self, model_and_data):
        model, dataset = model_and_data
        config = DPConfig(batch_size=4, sigma=1.0)
        state = LocalDPState()
        upload = local_update(model, dataset, state, config, np.random.default_rng(0))
        # Algorithm 1 line 11: every slot is overwritten with the upload.
        assert state.momentum.shape == (4, model.num_parameters)
        for slot in state.momentum:
            np.testing.assert_array_equal(slot, upload)

    def test_momentum_carries_across_rounds(self, model_and_data):
        """With beta > 0 the previous upload influences the next one."""
        model, dataset = model_and_data
        config = DPConfig(batch_size=8, sigma=0.0, momentum=0.9)
        state_a = LocalDPState()
        state_b = LocalDPState()
        rng_a = np.random.default_rng(3)
        rng_b = np.random.default_rng(3)
        first = local_update(model, dataset, state_a, config, rng_a)
        local_update(model, dataset, state_b, config, rng_b)
        # Warm state: second update differs from a cold-state update with the
        # same generator stream.
        second_warm = local_update(model, dataset, state_a, config, rng_a)
        second_cold = local_update(model, dataset, LocalDPState(), config, rng_b)
        assert not np.allclose(second_warm, second_cold)
        assert first.shape == second_warm.shape

    def test_deterministic_given_generator(self, model_and_data):
        model, dataset = model_and_data
        config = DPConfig(batch_size=8, sigma=1.0)
        a = local_update(model, dataset, LocalDPState(), config, np.random.default_rng(5))
        b = local_update(model, dataset, LocalDPState(), config, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_different_noise_across_calls(self, model_and_data):
        model, dataset = model_and_data
        config = DPConfig(batch_size=8, sigma=1.0)
        rng = np.random.default_rng(5)
        a = local_update(model, dataset, LocalDPState(), config, rng)
        b = local_update(model, dataset, LocalDPState(), config, rng)
        assert not np.allclose(a, b)

    def test_normalize_mode_independent_of_gradient_scale(self, model_and_data):
        """Normalisation makes the (noiseless) upload invariant to loss scaling."""
        model, dataset = model_and_data
        config = DPConfig(batch_size=8, sigma=0.0, momentum=0.0)
        upload = local_update(
            model, dataset, LocalDPState(), config, np.random.default_rng(0)
        )
        # Scale all parameters: the per-example gradients change magnitude but
        # their directions (and thus the normalised average) change smoothly;
        # the upload still has norm at most 1.
        model.set_flat_parameters(model.get_flat_parameters() * 3.0)
        upload_scaled = local_update(
            model, dataset, LocalDPState(), config, np.random.default_rng(0)
        )
        assert np.linalg.norm(upload) <= 1.0 + 1e-9
        assert np.linalg.norm(upload_scaled) <= 1.0 + 1e-9


class TestNoiseHelpers:
    def test_upload_noise_std(self):
        config = DPConfig(batch_size=16, sigma=3.2)
        assert upload_noise_std(config) == pytest.approx(0.2)

    def test_upload_noise_std_zero_for_non_private(self):
        assert upload_noise_std(DPConfig(sigma=0.0)) == 0.0

    def test_noise_to_signal_ratio_formula(self):
        config = DPConfig(batch_size=16, sigma=2.0)
        ratio = noise_to_signal_ratio(config, dimension=6400)
        assert ratio == pytest.approx(2.0 * 80 / 16)

    def test_noise_to_signal_ratio_grows_with_dimension(self):
        config = DPConfig(batch_size=16, sigma=1.0)
        assert noise_to_signal_ratio(config, 10_000) > noise_to_signal_ratio(config, 100)

    def test_noise_to_signal_ratio_shrinks_with_batch(self):
        small_batch = DPConfig(batch_size=8, sigma=1.0)
        large_batch = DPConfig(batch_size=128, sigma=1.0)
        assert noise_to_signal_ratio(small_batch, 5000) > noise_to_signal_ratio(
            large_batch, 5000
        )

    def test_noise_to_signal_ratio_zero_without_dp(self):
        assert noise_to_signal_ratio(DPConfig(sigma=0.0), 100) == 0.0

    def test_noise_to_signal_ratio_rejects_bad_dimension(self):
        with pytest.raises(ValueError):
            noise_to_signal_ratio(DPConfig(), 0)

"""Tests for the hyper-parameter tuning helpers (Theorem 1 / Equation 4 / Claim 6)."""

from __future__ import annotations

import math

import pytest

from repro.core.hyperparams import (
    optimal_learning_rate,
    protocol_sigma,
    theorem1_bound,
    transfer_learning_rate,
)
from repro.privacy.calibration import epsilon_for_sigma
from repro.privacy.mechanisms import l2_sensitivity_of_sum


class TestTransferRule:
    def test_identity_at_base_sigma(self):
        assert transfer_learning_rate(0.2, 1.5, 1.5) == pytest.approx(0.2)

    def test_inverse_proportionality(self):
        """eta = eta_b * sigma_b / sigma: doubling the noise halves the rate."""
        assert transfer_learning_rate(0.2, 1.0, 2.0) == pytest.approx(0.1)
        assert transfer_learning_rate(0.2, 1.0, 0.5) == pytest.approx(0.4)

    def test_product_eta_sigma_is_invariant(self):
        base_lr, base_sigma = 0.3, 0.79
        for sigma in (0.5, 1.0, 3.3, 10.0):
            lr = transfer_learning_rate(base_lr, base_sigma, sigma)
            assert lr * sigma == pytest.approx(base_lr * base_sigma)

    def test_zero_sigma_returns_base(self):
        assert transfer_learning_rate(0.2, 1.0, 0.0) == 0.2

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            transfer_learning_rate(0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            transfer_learning_rate(0.2, 0.0, 1.0)
        with pytest.raises(ValueError):
            transfer_learning_rate(0.2, 1.0, -1.0)


class TestOptimalLearningRate:
    def test_equation4_formula(self):
        lr = optimal_learning_rate(
            initial_loss=2.0, batch_size=16, iterations=1000,
            lipschitz=1.0, dimension=20_000, sigma=1.5,
        )
        expected = (1.0 / 1.5) * math.sqrt(2.0 * 2.0 * 16**2 / (1000 * 1.0 * 20_000))
        assert lr == pytest.approx(expected)

    def test_inverse_in_sigma(self):
        common = dict(initial_loss=1.0, batch_size=16, iterations=100, lipschitz=1.0, dimension=5000)
        assert optimal_learning_rate(sigma=2.0, **common) == pytest.approx(
            optimal_learning_rate(sigma=1.0, **common) / 2.0
        )

    def test_decreases_with_iterations(self):
        common = dict(initial_loss=1.0, batch_size=16, lipschitz=1.0, dimension=5000, sigma=1.0)
        assert optimal_learning_rate(iterations=1000, **common) < optimal_learning_rate(
            iterations=100, **common
        )

    def test_rejects_nonpositive_sigma(self):
        with pytest.raises(ValueError):
            optimal_learning_rate(1.0, 16, 100, 1.0, 5000, 0.0)

    def test_rejects_nonpositive_quantities(self):
        with pytest.raises(ValueError):
            optimal_learning_rate(0.0, 16, 100, 1.0, 5000, 1.0)
        with pytest.raises(ValueError):
            optimal_learning_rate(1.0, 0, 100, 1.0, 5000, 1.0)


class TestTheorem1Bound:
    def test_formula(self):
        bound = theorem1_bound(
            initial_loss=2.0, learning_rate=0.1, iterations=100, lipschitz=1.0,
            dimension=1000, sigma=1.0, batch_size=16, gradient_noise=0.5,
        )
        expected = (
            3.0 * 2.0 / (100 * 0.1)
            + 1.5 * 1.0 * 0.1 * (1.0 + 1.0 * 1000 / 256)
            + 8.0 * 0.5
        )
        assert bound == pytest.approx(expected)

    def test_equation4_minimises_the_bound(self):
        """The Equation 4 learning rate beats nearby rates on the Theorem 1 bound."""
        common = dict(
            initial_loss=2.0, iterations=500, lipschitz=1.0,
            dimension=20_000, sigma=2.0, batch_size=16,
        )
        best_lr = optimal_learning_rate(
            initial_loss=2.0, batch_size=16, iterations=500,
            lipschitz=1.0, dimension=20_000, sigma=2.0,
        )
        best = theorem1_bound(learning_rate=best_lr, **common)
        for factor in (0.25, 0.5, 2.0, 4.0):
            other = theorem1_bound(learning_rate=best_lr * factor, **common)
            assert best <= other + 1e-9

    def test_noise_term_dominates_for_small_batch(self):
        """sigma^2 d / b^2 >> 1 is the regime the protocol is designed for."""
        small_batch = theorem1_bound(1.0, 0.1, 100, 1.0, 20_000, 1.0, batch_size=8)
        large_batch = theorem1_bound(1.0, 0.1, 100, 1.0, 20_000, 1.0, batch_size=1024)
        assert small_batch > large_batch

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            theorem1_bound(1.0, 0.0, 100, 1.0, 100, 1.0, 16)
        with pytest.raises(ValueError):
            theorem1_bound(1.0, 0.1, 100, 1.0, 100, -1.0, 16)


class TestProtocolSigma:
    def test_includes_sensitivity_factor(self):
        """Algorithm 1's noise std is sensitivity (= 2) times the calibrated multiplier."""
        sigma = protocol_sigma(target_epsilon=1.0, delta=1e-4, sampling_rate=0.05, iterations=100)
        multiplier = sigma / l2_sensitivity_of_sum("normalize")
        achieved = epsilon_for_sigma(multiplier, q=0.05, steps=100, delta=1e-4)
        assert achieved <= 1.0

    def test_smaller_epsilon_more_noise(self):
        common = dict(delta=1e-4, sampling_rate=0.05, iterations=100)
        assert protocol_sigma(0.125, **common) > protocol_sigma(2.0, **common)

    def test_positive(self):
        assert protocol_sigma(2.0, 1e-4, 0.05, 50) > 0.0

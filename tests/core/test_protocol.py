"""Tests for the full two-stage aggregation rule (TwoStageAggregator)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ProtocolConfig
from repro.core.protocol import TwoStageAggregator
from repro.defenses.base import AggregationContext
from tests.helpers import make_model_and_data


DIMENSION_NOISE_STD = 0.08


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(23)


@pytest.fixture
def context() -> AggregationContext:
    """A context with a real model/auxiliary pair and a known noise level.

    The hidden layer pushes the parameter count to several hundred so that
    DP noise dominates the signal component of a simulated upload, which is
    the regime FirstAGG is designed for (sigma^2 d / b^2 >> 1).
    """
    model, dataset = make_model_and_data(seed=2, hidden=64)
    return AggregationContext(
        model=model,
        auxiliary=dataset.subset(np.arange(12)),
        upload_noise_std=DIMENSION_NOISE_STD,
        honest_fraction=0.5,
        round_index=0,
        rng=np.random.default_rng(3),
    )


def simulated_uploads(
    context: AggregationContext,
    rng: np.random.Generator,
    n_honest: int,
    n_byzantine: int,
    invert: bool = True,
) -> list[np.ndarray]:
    """Honest uploads = noisy normalised server-direction; Byzantine = inverted."""
    gradient = context.server_gradient()
    direction = gradient / np.linalg.norm(gradient)
    dimension = direction.size
    uploads = []
    for _ in range(n_honest):
        noise = rng.normal(0.0, DIMENSION_NOISE_STD, size=dimension)
        uploads.append(0.5 * direction + noise)
    for _ in range(n_byzantine):
        noise = rng.normal(0.0, DIMENSION_NOISE_STD, size=dimension)
        sign = -1.0 if invert else 1.0
        uploads.append(sign * 0.5 * direction + noise)
    return uploads


class TestTwoStage:
    def test_requires_auxiliary(self):
        aggregator = TwoStageAggregator()
        assert aggregator.requires_auxiliary

    def test_output_shape(self, context, rng):
        aggregator = TwoStageAggregator(ProtocolConfig(gamma=0.5))
        uploads = simulated_uploads(context, rng, 4, 4)
        result = aggregator.aggregate(uploads, context)
        assert result.shape == (context.model.num_parameters,)

    def test_rejects_byzantine_direction(self, context, rng):
        """With gamma = honest fraction the aggregate keeps the honest direction."""
        aggregator = TwoStageAggregator(ProtocolConfig(gamma=0.4))
        uploads = simulated_uploads(context, rng, 4, 6)
        result = aggregator.aggregate(uploads, context)
        gradient = context.server_gradient()
        assert float(np.dot(result, gradient)) > 0.0

    def test_mean_would_be_poisoned(self, context, rng):
        """Sanity check on the same uploads: plain averaging flips the direction."""
        uploads = simulated_uploads(context, rng, 4, 6)
        mean = np.mean(uploads, axis=0)
        gradient = context.server_gradient()
        assert float(np.dot(mean, gradient)) < 0.0

    def test_selected_workers_are_honest(self, context, rng):
        aggregator = TwoStageAggregator(ProtocolConfig(gamma=0.4))
        uploads = simulated_uploads(context, rng, 4, 6)
        aggregator.aggregate(uploads, context)
        assert set(aggregator.last_selected.tolist()) == {0, 1, 2, 3}

    def test_large_norm_uploads_zeroed_by_first_stage(self, context, rng):
        aggregator = TwoStageAggregator(ProtocolConfig(gamma=0.5))
        uploads = simulated_uploads(context, rng, 5, 0)
        uploads.append(np.ones(context.model.num_parameters) * 100.0)
        aggregator.aggregate(uploads, context)
        assert aggregator.last_first_stage_accepted is not None
        assert not aggregator.last_first_stage_accepted[-1]

    def test_first_stage_skipped_without_dp(self, rng):
        model, dataset = make_model_and_data(seed=4)
        context = AggregationContext(
            model=model,
            auxiliary=dataset.subset(np.arange(12)),
            upload_noise_std=0.0,
            honest_fraction=0.5,
            round_index=0,
            rng=np.random.default_rng(0),
        )
        aggregator = TwoStageAggregator(ProtocolConfig(gamma=0.5))
        uploads = [rng.normal(size=model.num_parameters) for _ in range(4)]
        aggregator.aggregate(uploads, context)
        assert aggregator.last_first_stage_accepted.all()

    def test_division_by_total_worker_count(self, context, rng):
        """Algorithm 1 line 14: the update is the selected sum divided by n."""
        aggregator = TwoStageAggregator(ProtocolConfig(gamma=1.0, use_first_stage=False))
        uploads = simulated_uploads(context, rng, 6, 0)
        result = aggregator.aggregate(uploads, context)
        np.testing.assert_allclose(result, np.mean(uploads, axis=0), atol=1e-12)

    def test_partial_selection_scales_down_update(self, context, rng):
        """Selecting k of n uploads divides their sum by n (not by k)."""
        aggregator = TwoStageAggregator(
            ProtocolConfig(gamma=0.5, use_first_stage=False)
        )
        uploads = simulated_uploads(context, rng, 4, 4)
        result = aggregator.aggregate(uploads, context)
        selected = aggregator.last_selected
        manual = np.sum([uploads[i] for i in selected], axis=0) / len(uploads)
        np.testing.assert_allclose(result, manual, atol=1e-12)

    def test_missing_auxiliary_raises(self, rng):
        model, _ = make_model_and_data(seed=4)
        context = AggregationContext(
            model=model,
            auxiliary=None,
            upload_noise_std=DIMENSION_NOISE_STD,
            honest_fraction=0.5,
            round_index=0,
            rng=np.random.default_rng(0),
        )
        aggregator = TwoStageAggregator()
        uploads = [rng.normal(size=model.num_parameters) for _ in range(3)]
        with pytest.raises(ValueError):
            aggregator.aggregate(uploads, context)

    def test_reset_clears_state(self, context, rng):
        aggregator = TwoStageAggregator(ProtocolConfig(gamma=0.5))
        uploads = simulated_uploads(context, rng, 4, 4)
        aggregator.aggregate(uploads, context)
        aggregator.reset()
        assert aggregator.last_selected is None
        assert aggregator._second_stage is None  # noqa: SLF001 - state check

    def test_ablation_first_stage_only(self, context, rng):
        aggregator = TwoStageAggregator(
            ProtocolConfig(gamma=0.4, use_second_stage=False)
        )
        uploads = simulated_uploads(context, rng, 4, 6)
        result = aggregator.aggregate(uploads, context)
        # Without the second stage, every upload that passes FirstAGG is kept.
        assert len(aggregator.last_selected) == 10
        assert result.shape == (context.model.num_parameters,)

    def test_ablation_second_stage_only(self, context, rng):
        aggregator = TwoStageAggregator(
            ProtocolConfig(gamma=0.4, use_first_stage=False)
        )
        uploads = simulated_uploads(context, rng, 4, 6)
        result = aggregator.aggregate(uploads, context)
        gradient = context.server_gradient()
        assert float(np.dot(result, gradient)) > 0.0

    def test_auxiliary_batch_subsampling(self, context, rng):
        aggregator = TwoStageAggregator(ProtocolConfig(gamma=0.5, auxiliary_batch=4))
        uploads = simulated_uploads(context, rng, 4, 2)
        result = aggregator.aggregate(uploads, context)
        assert np.all(np.isfinite(result))

    def test_empty_uploads_rejected(self, context):
        aggregator = TwoStageAggregator()
        with pytest.raises(ValueError):
            aggregator.aggregate([], context)

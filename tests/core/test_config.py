"""Tests for the DP / protocol configuration dataclasses."""

from __future__ import annotations

import pytest

from repro.core.config import DPConfig, ProtocolConfig


class TestDPConfig:
    def test_defaults_match_paper(self):
        config = DPConfig()
        assert config.batch_size == 16
        assert config.momentum == pytest.approx(0.1)
        assert config.bounding == "normalize"

    def test_frozen(self):
        config = DPConfig()
        with pytest.raises(Exception):
            config.sigma = 2.0  # type: ignore[misc]

    def test_zero_sigma_allowed_for_non_private_runs(self):
        assert DPConfig(sigma=0.0).sigma == 0.0

    def test_clip_mode(self):
        config = DPConfig(bounding="clip", clip_norm=2.0)
        assert config.bounding == "clip"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"batch_size": 0},
            {"batch_size": -4},
            {"sigma": -0.1},
            {"momentum": 1.0},
            {"momentum": -0.2},
            {"bounding": "median"},
            {"clip_norm": 0.0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DPConfig(**kwargs)


class TestProtocolConfig:
    def test_defaults_match_paper(self):
        config = ProtocolConfig()
        assert config.gamma == pytest.approx(0.5)
        assert config.ks_significance == pytest.approx(0.05)
        assert config.norm_k == pytest.approx(3.0)
        assert config.use_first_stage and config.use_second_stage

    def test_ablation_switches(self):
        config = ProtocolConfig(use_first_stage=False, use_second_stage=True)
        assert not config.use_first_stage

    def test_gamma_one_allowed(self):
        assert ProtocolConfig(gamma=1.0).gamma == 1.0

    def test_auxiliary_batch_optional(self):
        assert ProtocolConfig().auxiliary_batch is None
        assert ProtocolConfig(auxiliary_batch=8).auxiliary_batch == 8

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"gamma": 0.0},
            {"gamma": 1.5},
            {"ks_significance": 0.0},
            {"ks_significance": 1.0},
            {"norm_k": 0.0},
            {"auxiliary_batch": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ProtocolConfig(**kwargs)

"""Tests for FirstAGG (Algorithm 2): norm test + KS test."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.first_stage import FirstStageFilter


DIMENSION = 3000
SIGMA = 0.25


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(31)


@pytest.fixture
def first_stage() -> FirstStageFilter:
    return FirstStageFilter(sigma=SIGMA, dimension=DIMENSION)


def benign_upload(rng: np.random.Generator, signal_scale: float = 0.02) -> np.ndarray:
    """An upload dominated by DP noise plus a small signal component."""
    signal = rng.normal(size=DIMENSION)
    signal *= signal_scale / np.linalg.norm(signal)
    return signal + rng.normal(0.0, SIGMA, size=DIMENSION)


class TestConstruction:
    def test_rejects_nonpositive_sigma(self):
        with pytest.raises(ValueError):
            FirstStageFilter(sigma=0.0, dimension=10)

    def test_rejects_nonpositive_dimension(self):
        with pytest.raises(ValueError):
            FirstStageFilter(sigma=1.0, dimension=0)

    def test_norm_bounds_bracket_expectation(self, first_stage):
        low, high = first_stage.norm_bounds()
        assert low < SIGMA**2 * DIMENSION < high


class TestAcceptance:
    def test_accepts_pure_dp_noise(self, rng, first_stage):
        accepted = sum(
            first_stage.accepts(rng.normal(0.0, SIGMA, size=DIMENSION)) for _ in range(30)
        )
        assert accepted >= 27  # a benign upload is rejected only rarely

    def test_accepts_noise_dominated_honest_upload(self, rng, first_stage):
        accepted = sum(first_stage.accepts(benign_upload(rng)) for _ in range(30))
        assert accepted >= 27

    def test_rejects_zero_vector(self, first_stage):
        assert not first_stage.accepts(np.zeros(DIMENSION))

    def test_rejects_large_norm_upload(self, rng, first_stage):
        upload = rng.normal(0.0, SIGMA * 1.5, size=DIMENSION)
        assert not first_stage.accepts(upload)

    def test_rejects_small_norm_upload(self, rng, first_stage):
        upload = rng.normal(0.0, SIGMA * 0.5, size=DIMENSION)
        assert not first_stage.accepts(upload)

    def test_rejects_shifted_noise(self, rng, first_stage):
        """Correct norm but wrong shape: a mean shift is caught by the KS test."""
        upload = rng.normal(0.0, SIGMA, size=DIMENSION) + 0.3 * SIGMA
        # Rescale so the norm test alone would pass.
        target_norm = SIGMA * np.sqrt(DIMENSION)
        upload = upload / np.linalg.norm(upload) * target_norm
        report = first_stage.inspect(upload)
        assert report.norm_ok
        assert not report.ks_ok
        assert not report.accepted

    def test_rejects_sparse_spike_upload(self, rng, first_stage):
        """All mass on a few coordinates: right norm, wrong distribution."""
        upload = np.zeros(DIMENSION)
        spikes = rng.choice(DIMENSION, size=10, replace=False)
        upload[spikes] = SIGMA * np.sqrt(DIMENSION / 10)
        report = first_stage.inspect(upload)
        assert report.norm_ok
        assert not report.accepted

    def test_rejects_uniform_coordinates(self, rng, first_stage):
        """Uniformly distributed coordinates with the right norm are rejected."""
        upload = rng.uniform(-1.0, 1.0, size=DIMENSION)
        upload *= SIGMA * np.sqrt(DIMENSION) / np.linalg.norm(upload)
        assert not first_stage.accepts(upload)

    def test_rejects_large_honest_gradient_without_noise(self, rng, first_stage):
        """A raw (un-noised) normalised gradient does not look like DP noise."""
        gradient = rng.normal(size=DIMENSION)
        gradient /= np.linalg.norm(gradient)
        assert not first_stage.accepts(gradient)


class TestApplyAndFilterAll:
    def test_apply_keeps_accepted(self, rng, first_stage):
        upload = rng.normal(0.0, SIGMA, size=DIMENSION)
        if first_stage.accepts(upload):
            np.testing.assert_array_equal(first_stage.apply(upload), upload)

    def test_apply_zeroes_rejected(self, first_stage):
        rejected = np.ones(DIMENSION) * 10.0
        np.testing.assert_array_equal(first_stage.apply(rejected), 0.0)

    def test_filter_all_preserves_count_and_order(self, rng, first_stage):
        uploads = [rng.normal(0.0, SIGMA, size=DIMENSION) for _ in range(3)]
        uploads.append(np.ones(DIMENSION) * 5.0)  # clearly malicious
        filtered = first_stage.filter_all(uploads)
        assert len(filtered) == 4
        np.testing.assert_array_equal(filtered[3], 0.0)

    def test_inspect_rejects_wrong_shape(self, first_stage):
        with pytest.raises(ValueError):
            first_stage.inspect(np.zeros(DIMENSION + 1))

    def test_report_fields_consistent(self, rng, first_stage):
        upload = rng.normal(0.0, SIGMA, size=DIMENSION)
        report = first_stage.inspect(upload)
        assert report.accepted == (report.norm_ok and report.ks_ok)
        assert report.squared_norm == pytest.approx(float(upload @ upload))
        assert 0.0 <= report.ks_pvalue <= 1.0


class TestTheorem2Helpers:
    def test_critical_statistic_positive_and_small(self, first_stage):
        critical = first_stage.critical_ks_statistic()
        assert 0.0 < critical < 0.1  # narrow band for d = 3000

    def test_coordinate_interval_contains_gaussian_quantile(self, rng, first_stage):
        """Order statistics of accepted noise satisfy the Theorem 2 envelope."""
        upload = rng.normal(0.0, SIGMA, size=DIMENSION)
        assert first_stage.accepts(upload)
        ordered = np.sort(upload)
        for k in (1, DIMENSION // 4, DIMENSION // 2, 3 * DIMENSION // 4, DIMENSION):
            low, high = first_stage.coordinate_interval(k)
            assert low <= ordered[k - 1] <= high

    def test_attack_confined_to_subspace(self, rng, first_stage):
        """Any accepted upload respects the Theorem 2 order-statistic envelope.

        This is the paper's Byzantine-resilience statement for the first
        stage: the attacker can only play vectors inside a Gaussian-shaped
        subspace, so its norm (and hence its damage) is bounded.
        """
        trials = 200
        for _ in range(trials):
            candidate = rng.normal(0.0, SIGMA, size=DIMENSION) * rng.uniform(0.9, 1.1)
            if not first_stage.accepts(candidate):
                continue
            ordered = np.sort(candidate)
            for k in (1, DIMENSION // 2, DIMENSION):
                low, high = first_stage.coordinate_interval(k)
                assert low - 1e-9 <= ordered[k - 1] <= high + 1e-9

"""Unit tests for the batched FirstAGG path (apply_batch / inspect_batch)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.first_stage import FirstStageFilter


DIMENSION = 2000
SIGMA = 0.25


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(77)


@pytest.fixture
def first_stage() -> FirstStageFilter:
    return FirstStageFilter(sigma=SIGMA, dimension=DIMENSION)


def mixed_uploads(rng: np.random.Generator) -> np.ndarray:
    """Benign noise rows plus obviously malicious rows."""
    benign = rng.normal(0.0, SIGMA, size=(4, DIMENSION))
    too_large = rng.normal(0.0, 3.0 * SIGMA, size=(1, DIMENSION))
    too_small = rng.normal(0.0, 0.2 * SIGMA, size=(1, DIMENSION))
    shifted = rng.normal(0.0, SIGMA, size=(1, DIMENSION)) + 0.4 * SIGMA
    shifted *= SIGMA * np.sqrt(DIMENSION) / np.linalg.norm(shifted)
    return np.vstack([benign, too_large, too_small, shifted])


class TestApplyBatch:
    def test_mask_matches_scalar_accepts(self, rng, first_stage):
        uploads = mixed_uploads(rng)
        _, accepted = first_stage.apply_batch(uploads)
        expected = np.array([first_stage.accepts(row) for row in uploads])
        np.testing.assert_array_equal(accepted, expected)

    def test_filtered_matches_scalar_apply(self, rng, first_stage):
        uploads = mixed_uploads(rng)
        filtered, _ = first_stage.apply_batch(uploads)
        expected = np.vstack([first_stage.apply(row) for row in uploads])
        np.testing.assert_array_equal(filtered, expected)

    def test_rejected_rows_are_zero(self, rng, first_stage):
        uploads = mixed_uploads(rng)
        filtered, accepted = first_stage.apply_batch(uploads)
        assert not accepted[4:].any()  # the three malicious rows
        np.testing.assert_array_equal(filtered[~accepted], 0.0)

    def test_accepted_rows_pass_through_unchanged(self, rng, first_stage):
        uploads = mixed_uploads(rng)
        filtered, accepted = first_stage.apply_batch(uploads)
        np.testing.assert_array_equal(filtered[accepted], uploads[accepted])

    def test_list_input_is_stacked(self, rng, first_stage):
        uploads = mixed_uploads(rng)
        filtered_list, mask_list = first_stage.apply_batch(list(uploads))
        filtered_mat, mask_mat = first_stage.apply_batch(uploads)
        np.testing.assert_array_equal(filtered_list, filtered_mat)
        np.testing.assert_array_equal(mask_list, mask_mat)

    def test_wrong_dimension_rejected(self, first_stage):
        with pytest.raises(ValueError):
            first_stage.apply_batch(np.zeros((3, DIMENSION + 1)))

    def test_accepted_zero_upload_is_reported_accepted(self):
        """Regression: the mask, not ``np.any(row)``, decides acceptance.

        At ``d = 1`` the chi-square interval includes 0 and the KS test does
        not reject a single zero coordinate, so the all-zero upload is
        legitimately accepted -- yet its filtered row is all zeros.  Deriving
        acceptance from the filtered matrix would misreport it.
        """
        first_stage = FirstStageFilter(sigma=1.0, dimension=1)
        uploads = np.zeros((2, 1))
        assert first_stage.accepts(uploads[0])  # scalar path agrees
        filtered, accepted = first_stage.apply_batch(uploads)
        assert accepted.all()
        np.testing.assert_array_equal(filtered, 0.0)


class TestInspectBatch:
    def test_matches_scalar_inspect(self, rng, first_stage):
        uploads = mixed_uploads(rng)
        batch = first_stage.inspect_batch(uploads)
        for i, row in enumerate(uploads):
            report = first_stage.inspect(row)
            assert batch.accepted[i] == report.accepted
            assert batch.norm_ok[i] == report.norm_ok
            assert batch.ks_ok[i] == report.ks_ok
            assert batch.squared_norms[i] == pytest.approx(report.squared_norm, rel=1e-12)
            assert batch.ks_pvalues[i] == pytest.approx(report.ks_pvalue, rel=1e-12, abs=1e-300)

    def test_single_row_matrix(self, rng, first_stage):
        upload = rng.normal(0.0, SIGMA, size=DIMENSION)
        batch = first_stage.inspect_batch(upload[np.newaxis, :])
        assert batch.accepted.shape == (1,)
        assert batch.accepted[0] == first_stage.accepts(upload)

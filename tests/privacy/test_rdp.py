"""Tests for the Rényi-DP analysis of the subsampled Gaussian mechanism."""

from __future__ import annotations

import math

import pytest

from repro.privacy.rdp import DEFAULT_ORDERS, compute_rdp, rdp_to_epsilon


class TestComputeRdp:
    def test_zero_sampling_rate_gives_zero_rdp(self):
        rdp = compute_rdp(q=0.0, sigma=1.0, steps=100, orders=(2, 4, 8))
        assert all(value == 0.0 for value in rdp)

    def test_zero_steps_gives_zero_rdp(self):
        rdp = compute_rdp(q=0.01, sigma=1.0, steps=0, orders=(2, 4))
        assert all(value == 0.0 for value in rdp)

    def test_full_sampling_matches_plain_gaussian(self):
        """q = 1 reduces to the unamplified Gaussian mechanism alpha/(2 sigma^2)."""
        sigma = 2.0
        orders = (2, 8, 32)
        rdp = compute_rdp(q=1.0, sigma=sigma, steps=1, orders=orders)
        for value, order in zip(rdp, orders):
            assert value == pytest.approx(order / (2.0 * sigma**2), rel=1e-9)

    def test_linear_in_steps(self):
        one = compute_rdp(q=0.02, sigma=1.1, steps=1, orders=(4,))[0]
        many = compute_rdp(q=0.02, sigma=1.1, steps=500, orders=(4,))[0]
        assert many == pytest.approx(500 * one, rel=1e-9)

    def test_monotone_decreasing_in_sigma(self):
        small_noise = compute_rdp(q=0.01, sigma=0.8, steps=10, orders=(8,))[0]
        large_noise = compute_rdp(q=0.01, sigma=3.0, steps=10, orders=(8,))[0]
        assert large_noise < small_noise

    def test_monotone_increasing_in_q(self):
        small_q = compute_rdp(q=0.001, sigma=1.0, steps=10, orders=(8,))[0]
        large_q = compute_rdp(q=0.1, sigma=1.0, steps=10, orders=(8,))[0]
        assert small_q < large_q

    def test_subsampling_amplifies_privacy(self):
        """RDP with q < 1 must be smaller than the unamplified bound."""
        sigma, order = 1.5, 16
        subsampled = compute_rdp(q=0.05, sigma=sigma, steps=1, orders=(order,))[0]
        full = order / (2.0 * sigma**2)
        assert subsampled < full

    def test_nonnegative(self):
        rdp = compute_rdp(q=0.02, sigma=1.0, steps=7, orders=DEFAULT_ORDERS)
        assert all(value >= 0.0 for value in rdp)

    def test_rejects_bad_q(self):
        with pytest.raises(ValueError):
            compute_rdp(q=1.5, sigma=1.0, steps=1)
        with pytest.raises(ValueError):
            compute_rdp(q=-0.1, sigma=1.0, steps=1)

    def test_rejects_bad_sigma(self):
        with pytest.raises(ValueError):
            compute_rdp(q=0.1, sigma=0.0, steps=1)

    def test_rejects_negative_steps(self):
        with pytest.raises(ValueError):
            compute_rdp(q=0.1, sigma=1.0, steps=-1)

    def test_rejects_fractional_orders(self):
        with pytest.raises(ValueError):
            compute_rdp(q=0.1, sigma=1.0, steps=1, orders=(2.5,))

    def test_rejects_order_below_two(self):
        with pytest.raises(ValueError):
            compute_rdp(q=0.1, sigma=1.0, steps=1, orders=(1,))

    def test_small_q_quadratic_scaling(self):
        """For tiny q, the per-step RDP scales like q^2 (privacy amplification)."""
        sigma, alpha = 1.0, 4
        value_q = compute_rdp(q=1e-4, sigma=sigma, steps=1, orders=(alpha,))[0]
        value_half_q = compute_rdp(q=5e-5, sigma=sigma, steps=1, orders=(alpha,))[0]
        assert value_q / value_half_q == pytest.approx(4.0, rel=0.05)


class TestRdpToEpsilon:
    def test_conversion_formula_single_order(self):
        rdp, order, delta = [0.5], (10,), 1e-5
        epsilon, best = rdp_to_epsilon(rdp, order, delta)
        assert best == 10
        assert epsilon == pytest.approx(0.5 + math.log(1.0 / delta) / 9.0)

    def test_picks_the_best_order(self):
        orders = (2, 64)
        rdp = [0.01, 0.9]
        delta = 1e-3
        epsilon, best = rdp_to_epsilon(rdp, orders, delta)
        candidates = {
            order: value + math.log(1.0 / delta) / (order - 1)
            for value, order in zip(rdp, orders)
        }
        assert epsilon == pytest.approx(min(candidates.values()))
        assert best == min(candidates, key=candidates.get)

    def test_smaller_delta_larger_epsilon(self):
        rdp = compute_rdp(q=0.02, sigma=1.0, steps=100)
        eps_loose, _ = rdp_to_epsilon(rdp, DEFAULT_ORDERS, delta=1e-3)
        eps_tight, _ = rdp_to_epsilon(rdp, DEFAULT_ORDERS, delta=1e-7)
        assert eps_tight > eps_loose

    def test_more_steps_larger_epsilon(self):
        few = compute_rdp(q=0.02, sigma=1.0, steps=10)
        many = compute_rdp(q=0.02, sigma=1.0, steps=1000)
        eps_few, _ = rdp_to_epsilon(few, DEFAULT_ORDERS, 1e-5)
        eps_many, _ = rdp_to_epsilon(many, DEFAULT_ORDERS, 1e-5)
        assert eps_many > eps_few

    def test_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            rdp_to_epsilon([0.1], (2,), delta=0.0)
        with pytest.raises(ValueError):
            rdp_to_epsilon([0.1], (2,), delta=1.0)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            rdp_to_epsilon([0.1, 0.2], (2,), delta=1e-5)

    def test_epsilon_positive(self):
        rdp = compute_rdp(q=0.05, sigma=2.0, steps=50)
        epsilon, _ = rdp_to_epsilon(rdp, DEFAULT_ORDERS, 1e-5)
        assert epsilon > 0.0

    def test_reference_magnitude_against_known_setting(self):
        """A classic DP-SGD setting lands in the expected epsilon ballpark.

        q = 256/60000, sigma = 1.1, T = 10 epochs (~2344 steps), delta = 1e-5
        is known (Abadi et al.-style accounting) to give epsilon of a few
        units; the RDP bound should be in (1, 10).
        """
        q = 256 / 60000
        steps = int(10 * 60000 / 256)
        rdp = compute_rdp(q=q, sigma=1.1, steps=steps)
        epsilon, _ = rdp_to_epsilon(rdp, DEFAULT_ORDERS, delta=1e-5)
        assert 1.0 < epsilon < 10.0

"""Tests for sensitivity bounding (clip / normalise) and the Gaussian mechanism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.privacy.mechanisms import (
    clip_gradients,
    gaussian_noise,
    gaussian_noise_batch,
    l2_sensitivity_of_sum,
    normalize_gradients,
)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


class TestClipGradients:
    def test_large_rows_scaled_to_threshold(self, rng):
        gradients = rng.normal(size=(5, 20)) * 10.0
        clipped = clip_gradients(gradients, clip_norm=1.0)
        norms = np.linalg.norm(clipped, axis=1)
        np.testing.assert_allclose(norms, 1.0, atol=1e-9)

    def test_small_rows_untouched(self):
        gradients = np.array([[0.1, 0.2], [0.0, 0.3]])
        clipped = clip_gradients(gradients, clip_norm=5.0)
        np.testing.assert_allclose(clipped, gradients)

    def test_direction_preserved(self, rng):
        gradient = rng.normal(size=(1, 30)) * 7.0
        clipped = clip_gradients(gradient, clip_norm=2.0)
        cosine = float(np.dot(clipped[0], gradient[0])) / (
            np.linalg.norm(clipped) * np.linalg.norm(gradient)
        )
        assert cosine == pytest.approx(1.0)

    def test_norms_never_exceed_threshold(self, rng):
        gradients = rng.normal(size=(50, 10)) * rng.uniform(0.1, 20.0, size=(50, 1))
        clipped = clip_gradients(gradients, clip_norm=3.0)
        assert np.all(np.linalg.norm(clipped, axis=1) <= 3.0 + 1e-9)

    def test_zero_row_stays_zero(self):
        clipped = clip_gradients(np.zeros((2, 4)), clip_norm=1.0)
        np.testing.assert_allclose(clipped, 0.0)

    def test_accepts_1d_input(self):
        clipped = clip_gradients(np.array([3.0, 4.0]), clip_norm=1.0)
        assert clipped.shape == (1, 2)
        assert np.linalg.norm(clipped) == pytest.approx(1.0)

    def test_rejects_nonpositive_clip_norm(self):
        with pytest.raises(ValueError):
            clip_gradients(np.ones((1, 2)), clip_norm=0.0)

    def test_idempotent(self, rng):
        gradients = rng.normal(size=(4, 6)) * 5.0
        once = clip_gradients(gradients, 1.5)
        twice = clip_gradients(once, 1.5)
        np.testing.assert_allclose(once, twice)


class TestNormalizeGradients:
    def test_all_rows_unit_norm(self, rng):
        gradients = rng.normal(size=(8, 15)) * rng.uniform(0.01, 100.0, size=(8, 1))
        normalized = normalize_gradients(gradients)
        np.testing.assert_allclose(np.linalg.norm(normalized, axis=1), 1.0, atol=1e-9)

    def test_direction_preserved(self, rng):
        gradient = rng.normal(size=(1, 12))
        normalized = normalize_gradients(gradient)
        cosine = float(np.dot(normalized[0], gradient[0])) / (
            np.linalg.norm(normalized) * np.linalg.norm(gradient)
        )
        assert cosine == pytest.approx(1.0)

    def test_zero_row_stays_zero(self):
        gradients = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
        normalized = normalize_gradients(gradients)
        np.testing.assert_allclose(normalized[0], 0.0)
        np.testing.assert_allclose(np.linalg.norm(normalized[1]), 1.0)

    def test_scale_invariant(self, rng):
        gradients = rng.normal(size=(3, 9))
        np.testing.assert_allclose(
            normalize_gradients(gradients), normalize_gradients(gradients * 1000.0)
        )

    def test_idempotent(self, rng):
        gradients = rng.normal(size=(3, 9))
        once = normalize_gradients(gradients)
        np.testing.assert_allclose(once, normalize_gradients(once), atol=1e-12)

    def test_equivalent_to_clipping_when_all_norms_exceed_threshold(self, rng):
        """CLAIM 1's thought experiment: for large gradients, clip(C) == C * normalize."""
        gradients = rng.normal(size=(6, 10)) * 50.0  # norms far above C = 2
        clipped = clip_gradients(gradients, clip_norm=2.0)
        normalized = normalize_gradients(gradients)
        np.testing.assert_allclose(clipped, 2.0 * normalized, atol=1e-9)

    def test_accepts_1d_input(self):
        normalized = normalize_gradients(np.array([0.0, 3.0, 4.0]))
        assert normalized.shape == (1, 3)
        np.testing.assert_allclose(normalized, [[0.0, 0.6, 0.8]])


class TestStackedLayouts:
    """The stacked (n_workers, batch, d) layout matches per-worker 2-D calls."""

    def test_normalize_stacked_matches_per_worker(self, rng):
        stacked = rng.normal(size=(4, 6, 9)) * rng.uniform(0.01, 50.0, size=(4, 6, 1))
        batched = normalize_gradients(stacked)
        for worker in range(stacked.shape[0]):
            np.testing.assert_array_equal(
                batched[worker], normalize_gradients(stacked[worker])
            )

    def test_clip_stacked_matches_per_worker(self, rng):
        stacked = rng.normal(size=(3, 5, 7)) * rng.uniform(0.1, 20.0, size=(3, 5, 1))
        batched = clip_gradients(stacked, clip_norm=1.5)
        for worker in range(stacked.shape[0]):
            np.testing.assert_array_equal(
                batched[worker], clip_gradients(stacked[worker], clip_norm=1.5)
            )

    def test_normalize_stacked_zero_rows_stay_zero(self, rng):
        stacked = rng.normal(size=(2, 4, 5))
        stacked[0, 2] = 0.0
        stacked[1, 0] = 0.0
        normalized = normalize_gradients(stacked)
        np.testing.assert_array_equal(normalized[0, 2], 0.0)
        np.testing.assert_array_equal(normalized[1, 0], 0.0)
        other = np.linalg.norm(normalized[1, 1])
        assert other == pytest.approx(1.0)

    def test_normalize_out_in_place(self, rng):
        gradients = rng.normal(size=(3, 4, 6))
        expected = normalize_gradients(gradients)
        returned = normalize_gradients(gradients, out=gradients)
        assert returned is gradients
        np.testing.assert_array_equal(gradients, expected)

    def test_clip_out_in_place(self, rng):
        gradients = rng.normal(size=(5, 8)) * 10.0
        expected = clip_gradients(gradients, clip_norm=2.0)
        returned = clip_gradients(gradients, clip_norm=2.0, out=gradients)
        assert returned is gradients
        np.testing.assert_array_equal(gradients, expected)

    def test_out_shape_mismatch_rejected(self, rng):
        gradients = rng.normal(size=(3, 4))
        with pytest.raises(ValueError):
            normalize_gradients(gradients, out=np.empty((4, 3)))
        with pytest.raises(ValueError):
            clip_gradients(gradients, 1.0, out=np.empty((2, 4)))


class TestGaussianNoiseBatch:
    def test_rows_match_per_worker_draws(self):
        rngs = [np.random.default_rng(seed) for seed in (1, 2, 3)]
        reference = [
            gaussian_noise(12, 0.8, np.random.default_rng(seed)) for seed in (1, 2, 3)
        ]
        batched = gaussian_noise_batch(12, 0.8, rngs)
        assert batched.shape == (3, 12)
        for row, expected in zip(batched, reference):
            np.testing.assert_array_equal(row, expected)

    def test_zero_sigma_returns_zeros_without_consuming_streams(self):
        rngs = [np.random.default_rng(7)]
        batched = gaussian_noise_batch(5, 0.0, rngs)
        np.testing.assert_array_equal(batched, 0.0)
        np.testing.assert_array_equal(
            rngs[0].normal(size=3), np.random.default_rng(7).normal(size=3)
        )

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            gaussian_noise_batch(0, 1.0, [np.random.default_rng(0)])
        with pytest.raises(ValueError):
            gaussian_noise_batch(4, -1.0, [np.random.default_rng(0)])


class TestSensitivity:
    def test_normalize_sensitivity_is_two(self):
        assert l2_sensitivity_of_sum("normalize") == 2.0

    def test_clip_sensitivity_is_twice_threshold(self):
        assert l2_sensitivity_of_sum("clip", clip_norm=1.5) == 3.0

    def test_clip_requires_threshold(self):
        with pytest.raises(ValueError):
            l2_sensitivity_of_sum("clip")

    def test_clip_rejects_nonpositive_threshold(self):
        with pytest.raises(ValueError):
            l2_sensitivity_of_sum("clip", clip_norm=-1.0)

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            l2_sensitivity_of_sum("hash")

    def test_empirical_sensitivity_of_normalized_sum(self, rng):
        """Swapping one example changes the normalised sum by at most 2."""
        batch = normalize_gradients(rng.normal(size=(16, 40)))
        total = batch.sum(axis=0)
        for _ in range(20):
            replacement = normalize_gradients(rng.normal(size=(1, 40)))[0]
            swapped = total - batch[0] + replacement
            assert np.linalg.norm(swapped - total) <= 2.0 + 1e-9


class TestGaussianNoise:
    def test_shape(self, rng):
        assert gaussian_noise(100, 1.0, rng).shape == (100,)

    def test_zero_sigma_gives_zero_vector(self, rng):
        np.testing.assert_array_equal(gaussian_noise(50, 0.0, rng), 0.0)

    def test_empirical_standard_deviation(self, rng):
        noise = gaussian_noise(200_000, 2.5, rng)
        assert noise.std() == pytest.approx(2.5, rel=0.02)
        assert abs(noise.mean()) < 0.05

    def test_norm_concentrates_around_sigma_sqrt_d(self, rng):
        d, sigma = 10_000, 0.7
        norm = float(np.linalg.norm(gaussian_noise(d, sigma, rng)))
        assert norm == pytest.approx(sigma * np.sqrt(d), rel=0.05)

    def test_reproducible_with_same_generator_state(self):
        a = gaussian_noise(10, 1.0, np.random.default_rng(3))
        b = gaussian_noise(10, 1.0, np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)

    def test_rejects_bad_dimension(self, rng):
        with pytest.raises(ValueError):
            gaussian_noise(0, 1.0, rng)

    def test_rejects_negative_sigma(self, rng):
        with pytest.raises(ValueError):
            gaussian_noise(10, -1.0, rng)

"""Tests for the RDP accountant and noise-multiplier calibration."""

from __future__ import annotations

import pytest

from repro.privacy.accountant import RDPAccountant
from repro.privacy.calibration import calibrate_sigma, epsilon_for_sigma


class TestAccountant:
    def test_initial_state_has_no_steps(self):
        accountant = RDPAccountant()
        assert accountant.steps == 0

    def test_step_counter(self):
        accountant = RDPAccountant()
        accountant.step(q=0.01, sigma=1.0, steps=10)
        accountant.step(q=0.01, sigma=1.0, steps=5)
        assert accountant.steps == 15

    def test_epsilon_grows_with_steps(self):
        accountant = RDPAccountant()
        accountant.step(q=0.02, sigma=1.0, steps=100)
        early = accountant.get_epsilon(delta=1e-5)
        accountant.step(q=0.02, sigma=1.0, steps=900)
        late = accountant.get_epsilon(delta=1e-5)
        assert late > early

    def test_matches_single_shot_composition(self):
        """Stepping twice equals stepping once with the summed step count."""
        split = RDPAccountant()
        split.step(q=0.01, sigma=1.2, steps=300)
        split.step(q=0.01, sigma=1.2, steps=700)
        combined = RDPAccountant()
        combined.step(q=0.01, sigma=1.2, steps=1000)
        assert split.get_epsilon(1e-5) == pytest.approx(combined.get_epsilon(1e-5))

    def test_heterogeneous_steps_compose(self):
        accountant = RDPAccountant()
        accountant.step(q=0.01, sigma=1.0, steps=100)
        accountant.step(q=0.05, sigma=2.0, steps=100)
        assert accountant.get_epsilon(1e-5) > 0.0

    def test_reset(self):
        accountant = RDPAccountant()
        accountant.step(q=0.02, sigma=1.0, steps=100)
        accountant.reset()
        assert accountant.steps == 0
        fresh = RDPAccountant()
        fresh.step(q=0.02, sigma=1.0, steps=1)
        accountant.step(q=0.02, sigma=1.0, steps=1)
        assert accountant.get_epsilon(1e-5) == pytest.approx(fresh.get_epsilon(1e-5))

    def test_epsilon_and_order(self):
        accountant = RDPAccountant()
        accountant.step(q=0.02, sigma=1.0, steps=100)
        epsilon, order = accountant.get_epsilon_and_order(1e-5)
        assert epsilon == pytest.approx(accountant.get_epsilon(1e-5))
        assert order in accountant.orders

    def test_rejects_empty_orders(self):
        with pytest.raises(ValueError):
            RDPAccountant(orders=())

    def test_more_noise_less_epsilon(self):
        low_noise = RDPAccountant()
        low_noise.step(q=0.02, sigma=0.8, steps=200)
        high_noise = RDPAccountant()
        high_noise.step(q=0.02, sigma=4.0, steps=200)
        assert high_noise.get_epsilon(1e-5) < low_noise.get_epsilon(1e-5)


class TestEpsilonForSigma:
    def test_monotone_decreasing_in_sigma(self):
        eps_small = epsilon_for_sigma(sigma=0.8, q=0.01, steps=500, delta=1e-5)
        eps_large = epsilon_for_sigma(sigma=3.0, q=0.01, steps=500, delta=1e-5)
        assert eps_large < eps_small

    def test_monotone_increasing_in_steps(self):
        eps_few = epsilon_for_sigma(sigma=1.0, q=0.01, steps=10, delta=1e-5)
        eps_many = epsilon_for_sigma(sigma=1.0, q=0.01, steps=1000, delta=1e-5)
        assert eps_many > eps_few

    def test_positive(self):
        assert epsilon_for_sigma(sigma=1.0, q=0.02, steps=100, delta=1e-4) > 0.0


class TestCalibrateSigma:
    def test_calibrated_sigma_meets_target(self):
        target, delta, q, steps = 1.0, 1e-4, 0.02, 500
        sigma = calibrate_sigma(target, delta, q, steps)
        achieved = epsilon_for_sigma(sigma, q, steps, delta)
        assert achieved <= target

    def test_calibration_is_tight(self):
        """A slightly smaller sigma should violate the target (no over-noising)."""
        target, delta, q, steps = 1.0, 1e-4, 0.02, 500
        sigma = calibrate_sigma(target, delta, q, steps, tolerance=1e-4)
        assert epsilon_for_sigma(sigma * 0.97, q, steps, delta) > target

    def test_smaller_epsilon_needs_more_noise(self):
        common = dict(delta=1e-4, q=0.02, steps=300)
        assert calibrate_sigma(0.125, **common) > calibrate_sigma(2.0, **common)

    def test_more_steps_need_more_noise(self):
        common = dict(target_epsilon=1.0, delta=1e-4, q=0.02)
        assert calibrate_sigma(steps=2000, **common) > calibrate_sigma(steps=100, **common)

    def test_larger_sampling_rate_needs_more_noise(self):
        common = dict(target_epsilon=1.0, delta=1e-4, steps=300)
        assert calibrate_sigma(q=0.2, **common) > calibrate_sigma(q=0.01, **common)

    def test_very_loose_target_returns_minimum(self):
        sigma = calibrate_sigma(
            target_epsilon=1e6, delta=1e-4, q=0.001, steps=1, sigma_min=0.05
        )
        assert sigma == pytest.approx(0.05)

    def test_rejects_nonpositive_target(self):
        with pytest.raises(ValueError):
            calibrate_sigma(0.0, 1e-4, 0.01, 10)

    def test_rejects_nonpositive_steps(self):
        with pytest.raises(ValueError):
            calibrate_sigma(1.0, 1e-4, 0.01, 0)

    def test_unreachable_target_raises(self):
        with pytest.raises(ValueError):
            calibrate_sigma(
                target_epsilon=1e-8, delta=1e-12, q=0.5, steps=10_000, sigma_max=5.0
            )

    @pytest.mark.parametrize("epsilon", [0.125, 0.5, 2.0])
    def test_paper_privacy_levels_are_calibratable(self, epsilon):
        """The paper's epsilon grid with its delta = |D|^-1.1 convention."""
        local_size = 300
        delta = 1.0 / local_size**1.1
        q = 16 / local_size
        steps = 150
        sigma = calibrate_sigma(epsilon, delta, q, steps)
        assert sigma > 0.0
        assert epsilon_for_sigma(sigma, q, steps, delta) <= epsilon

"""Tests for the in-memory Dataset container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(5)


@pytest.fixture
def dataset(rng) -> Dataset:
    features = rng.normal(size=(30, 4))
    labels = np.repeat(np.arange(3), 10)
    return Dataset(features=features, labels=labels, num_classes=3, name="demo")


class TestConstruction:
    def test_len_and_dim(self, dataset):
        assert len(dataset) == 30
        assert dataset.dim == 4

    def test_casts_dtypes(self):
        data = Dataset(
            features=np.ones((2, 3), dtype=np.float32),
            labels=np.array([0, 1], dtype=np.int8),
            num_classes=2,
        )
        assert data.features.dtype == np.float64
        assert data.labels.dtype == np.int64

    def test_rejects_1d_features(self):
        with pytest.raises(ValueError):
            Dataset(features=np.ones(5), labels=np.zeros(5, dtype=int), num_classes=2)

    def test_rejects_2d_labels(self):
        with pytest.raises(ValueError):
            Dataset(
                features=np.ones((5, 2)),
                labels=np.zeros((5, 1), dtype=int),
                num_classes=2,
            )

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            Dataset(features=np.ones((5, 2)), labels=np.zeros(4, dtype=int), num_classes=2)

    def test_rejects_label_out_of_range(self):
        with pytest.raises(ValueError):
            Dataset(features=np.ones((2, 2)), labels=np.array([0, 5]), num_classes=3)

    def test_rejects_negative_label(self):
        with pytest.raises(ValueError):
            Dataset(features=np.ones((2, 2)), labels=np.array([0, -1]), num_classes=3)

    def test_rejects_nonpositive_num_classes(self):
        with pytest.raises(ValueError):
            Dataset(features=np.ones((2, 2)), labels=np.zeros(2, dtype=int), num_classes=0)


class TestSubset:
    def test_subset_selects_rows(self, dataset):
        subset = dataset.subset(np.array([0, 10, 20]))
        assert len(subset) == 3
        np.testing.assert_array_equal(subset.labels, [0, 1, 2])

    def test_subset_preserves_num_classes(self, dataset):
        subset = dataset.subset(np.array([0]))
        assert subset.num_classes == 3

    def test_subset_preserves_name(self, dataset):
        assert dataset.subset(np.array([0])).name == "demo"

    def test_subset_with_repeated_indices(self, dataset):
        subset = dataset.subset(np.array([1, 1, 1]))
        assert len(subset) == 3
        assert np.all(subset.labels == dataset.labels[1])


class TestSampleBatch:
    def test_batch_size(self, dataset, rng):
        batch = dataset.sample_batch(8, rng)
        assert len(batch) == 8
        assert batch.dim == dataset.dim

    def test_samples_with_replacement(self, rng):
        tiny = Dataset(features=np.ones((2, 2)), labels=np.array([0, 1]), num_classes=2)
        batch = tiny.sample_batch(10, rng)
        assert len(batch) == 10  # larger than the dataset: replacement required

    def test_rejects_nonpositive_batch(self, dataset, rng):
        with pytest.raises(ValueError):
            dataset.sample_batch(0, rng)

    def test_deterministic_given_generator_state(self, dataset):
        a = dataset.sample_batch(5, np.random.default_rng(1))
        b = dataset.sample_batch(5, np.random.default_rng(1))
        np.testing.assert_array_equal(a.features, b.features)


class TestLabelFlipping:
    def test_flip_formula(self, dataset):
        flipped = dataset.with_flipped_labels()
        np.testing.assert_array_equal(flipped.labels, 2 - dataset.labels)

    def test_flip_is_involution(self, dataset):
        twice = dataset.with_flipped_labels().with_flipped_labels()
        np.testing.assert_array_equal(twice.labels, dataset.labels)

    def test_flip_preserves_features(self, dataset):
        flipped = dataset.with_flipped_labels()
        np.testing.assert_array_equal(flipped.features, dataset.features)

    def test_flip_does_not_alias_features(self, dataset):
        flipped = dataset.with_flipped_labels()
        flipped.features[0, 0] = 123.0
        assert dataset.features[0, 0] != 123.0

    def test_middle_class_is_fixed_point_for_odd_classes(self):
        data = Dataset(features=np.ones((3, 2)), labels=np.array([0, 1, 2]), num_classes=3)
        flipped = data.with_flipped_labels()
        assert flipped.labels[1] == 1


class TestClassCounts:
    def test_balanced_counts(self, dataset):
        np.testing.assert_array_equal(dataset.class_counts(), [10, 10, 10])

    def test_counts_include_absent_classes(self):
        data = Dataset(features=np.ones((2, 2)), labels=np.array([0, 0]), num_classes=4)
        np.testing.assert_array_equal(data.class_counts(), [2, 0, 0, 0])

    def test_counts_sum_to_length(self, dataset):
        assert dataset.class_counts().sum() == len(dataset)

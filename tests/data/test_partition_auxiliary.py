"""Tests for worker partitioning (Algorithm 4) and server auxiliary data."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.auxiliary import sample_auxiliary, sample_mismatched_auxiliary
from repro.data.partition import partition_iid, partition_noniid
from repro.data.synthetic import make_classification


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(17)


@pytest.fixture
def dataset(rng):
    return make_classification(600, 8, 5, rng=rng, name="source")


class TestIidPartition:
    def test_number_of_shards(self, dataset, rng):
        shards = partition_iid(dataset, 10, rng)
        assert len(shards) == 10

    def test_sizes_balanced(self, dataset, rng):
        shards = partition_iid(dataset, 7, rng)
        sizes = [len(shard) for shard in shards]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == len(dataset)

    def test_label_distribution_approximately_uniform(self, dataset, rng):
        shards = partition_iid(dataset, 5, rng)
        for shard in shards:
            fractions = shard.class_counts() / len(shard)
            # each class is ~20%; i.i.d. shards stay within a loose band
            assert np.all(fractions > 0.08) and np.all(fractions < 0.35)

    def test_accepts_integer_seed(self, dataset):
        shards = partition_iid(dataset, 4, rng=0)
        assert len(shards) == 4

    def test_reproducible(self, dataset):
        a = partition_iid(dataset, 6, rng=9)
        b = partition_iid(dataset, 6, rng=9)
        for shard_a, shard_b in zip(a, b):
            np.testing.assert_array_equal(shard_a.labels, shard_b.labels)

    def test_rejects_nonpositive_workers(self, dataset, rng):
        with pytest.raises(ValueError):
            partition_iid(dataset, 0, rng)

    def test_rejects_more_workers_than_examples(self, rng):
        tiny = make_classification(10, 4, 2, rng=rng)
        with pytest.raises(ValueError):
            partition_iid(tiny, 11, rng)

    def test_shards_cover_all_examples_exactly_once(self, dataset, rng):
        shards = partition_iid(dataset, 8, rng)
        combined = np.sort(np.concatenate([shard.features[:, 0] for shard in shards]))
        np.testing.assert_allclose(combined, np.sort(dataset.features[:, 0]))


class TestNonIidPartition:
    def test_number_of_shards_and_coverage(self, dataset, rng):
        shards = partition_noniid(dataset, 10, rng)
        assert len(shards) == 10
        assert sum(len(shard) for shard in shards) == len(dataset)

    def test_no_empty_shard(self, dataset, rng):
        shards = partition_noniid(dataset, 12, rng)
        assert all(len(shard) > 0 for shard in shards)

    def test_label_distributions_are_skewed(self, dataset, rng):
        """Figure 5: per-worker class fractions differ visibly across workers."""
        shards = partition_noniid(dataset, 10, rng)
        fractions = np.array(
            [shard.class_counts() / len(shard) for shard in shards]
        )
        spread = fractions.max(axis=0) - fractions.min(axis=0)
        # at least one class whose share varies by more than 15 percentage points
        assert spread.max() > 0.15

    def test_more_skewed_than_iid(self, dataset, rng):
        iid_shards = partition_iid(dataset, 10, np.random.default_rng(1))
        noniid_shards = partition_noniid(dataset, 10, np.random.default_rng(1))

        def skew(shards):
            fractions = np.array([s.class_counts() / len(s) for s in shards])
            return float(fractions.std(axis=0).mean())

        assert skew(noniid_shards) > skew(iid_shards)

    def test_reproducible(self, dataset):
        a = partition_noniid(dataset, 6, rng=2)
        b = partition_noniid(dataset, 6, rng=2)
        for shard_a, shard_b in zip(a, b):
            np.testing.assert_array_equal(shard_a.labels, shard_b.labels)

    def test_rejects_nonpositive_workers(self, dataset, rng):
        with pytest.raises(ValueError):
            partition_noniid(dataset, -1, rng)

    def test_rejects_more_workers_than_examples(self, rng):
        tiny = make_classification(10, 4, 2, rng=rng)
        with pytest.raises(ValueError):
            partition_noniid(tiny, 20, rng)


class TestAuxiliary:
    def test_two_per_class_default(self, dataset, rng):
        auxiliary = sample_auxiliary(dataset, per_class=2, rng=rng)
        assert len(auxiliary) == 2 * dataset.num_classes
        np.testing.assert_array_equal(auxiliary.class_counts(), 2)

    def test_custom_per_class(self, dataset, rng):
        auxiliary = sample_auxiliary(dataset, per_class=5, rng=rng)
        np.testing.assert_array_equal(auxiliary.class_counts(), 5)

    def test_samples_come_from_source(self, dataset, rng):
        auxiliary = sample_auxiliary(dataset, per_class=2, rng=rng)
        source_rows = {tuple(row) for row in dataset.features}
        for row in auxiliary.features:
            assert tuple(row) in source_rows

    def test_name_suffix(self, dataset, rng):
        assert sample_auxiliary(dataset, rng=rng).name.endswith("_aux")

    def test_rejects_nonpositive_per_class(self, dataset, rng):
        with pytest.raises(ValueError):
            sample_auxiliary(dataset, per_class=0, rng=rng)

    def test_rejects_when_class_underrepresented(self, rng):
        small = make_classification(10, 4, 5, rng=rng)  # 2 examples per class
        with pytest.raises(ValueError):
            sample_auxiliary(small, per_class=3, rng=rng)

    def test_reproducible(self, dataset):
        a = sample_auxiliary(dataset, rng=1)
        b = sample_auxiliary(dataset, rng=1)
        np.testing.assert_array_equal(a.features, b.features)

    def test_mismatched_auxiliary_shape(self, dataset, rng):
        auxiliary = sample_mismatched_auxiliary(dataset, per_class=2, rng=rng)
        assert len(auxiliary) == 2 * dataset.num_classes
        assert auxiliary.dim == dataset.dim

    def test_mismatched_auxiliary_not_from_source(self, dataset, rng):
        auxiliary = sample_mismatched_auxiliary(dataset, per_class=2, rng=rng)
        source_rows = {tuple(row) for row in dataset.features}
        overlap = sum(tuple(row) in source_rows for row in auxiliary.features)
        assert overlap == 0

"""Tests for the synthetic generators and the dataset registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.registry import DATASET_SPECS, available_datasets, load_dataset
from repro.data.synthetic import make_classification, make_mismatched_space
from repro.nn.layers import Linear
from repro.nn.network import Sequential


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(77)


class TestMakeClassification:
    def test_shapes(self, rng):
        data = make_classification(100, 10, 4, rng=rng)
        assert data.features.shape == (100, 10)
        assert data.labels.shape == (100,)
        assert data.num_classes == 4

    def test_classes_balanced(self, rng):
        data = make_classification(100, 6, 4, rng=rng)
        counts = data.class_counts()
        assert counts.max() - counts.min() <= 1

    def test_features_standardised(self, rng):
        data = make_classification(500, 12, 5, rng=rng)
        np.testing.assert_allclose(data.features.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(data.features.std(axis=0), 1.0, atol=1e-6)

    def test_reproducible_with_seed(self):
        a = make_classification(50, 5, 3, rng=4)
        b = make_classification(50, 5, 3, rng=4)
        np.testing.assert_array_equal(a.features, b.features)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_separable_dataset_is_learnable(self, rng):
        """A linear model trained on well-separated data should beat chance."""
        data = make_classification(
            300, 8, 3, class_separation=5.0, within_class_std=0.5, nonlinear=False, rng=rng
        )
        model = Sequential([Linear(8, 3, rng)])
        for _ in range(80):
            _, gradient = model.mean_gradient(data.features, data.labels)
            model.set_flat_parameters(model.get_flat_parameters() - 0.5 * gradient)
        accuracy = float(np.mean(model.predict(data.features) == data.labels))
        assert accuracy > 0.8

    def test_larger_separation_is_easier(self, rng):
        """Class separation controls difficulty (difficulty ordering is preserved)."""

        def trained_accuracy(separation: float, seed: int) -> float:
            local_rng = np.random.default_rng(seed)
            data = make_classification(
                400, 10, 5, class_separation=separation, within_class_std=1.0,
                nonlinear=True, rng=local_rng,
            )
            model = Sequential([Linear(10, 5, local_rng)])
            for _ in range(60):
                _, gradient = model.mean_gradient(data.features, data.labels)
                model.set_flat_parameters(model.get_flat_parameters() - 0.5 * gradient)
            return float(np.mean(model.predict(data.features) == data.labels))

        easy = np.mean([trained_accuracy(5.0, s) for s in range(3)])
        hard = np.mean([trained_accuracy(1.0, s) for s in range(3)])
        assert easy > hard

    def test_rejects_too_few_samples(self, rng):
        with pytest.raises(ValueError):
            make_classification(2, 4, 3, rng=rng)

    def test_rejects_single_class(self, rng):
        with pytest.raises(ValueError):
            make_classification(10, 4, 1, rng=rng)

    def test_name_recorded(self, rng):
        assert make_classification(20, 4, 2, rng=rng, name="abc").name == "abc"


class TestMismatchedSpace:
    def test_shape_matches_reference(self, rng):
        reference = make_classification(50, 7, 4, rng=rng)
        mismatched = make_mismatched_space(reference, n_samples=30, rng=rng)
        assert mismatched.dim == 7
        assert mismatched.num_classes == 4
        assert len(mismatched) == 30

    def test_labels_within_range(self, rng):
        reference = make_classification(50, 7, 4, rng=rng)
        mismatched = make_mismatched_space(reference, n_samples=200, rng=rng)
        assert mismatched.labels.min() >= 0
        assert mismatched.labels.max() < 4

    def test_features_uncorrelated_with_labels(self, rng):
        """A model trained on mismatched data should not beat chance by much."""
        reference = make_classification(50, 6, 3, rng=rng)
        mismatched = make_mismatched_space(reference, n_samples=600, rng=rng)
        model = Sequential([Linear(6, 3, rng)])
        for _ in range(50):
            _, gradient = model.mean_gradient(mismatched.features, mismatched.labels)
            model.set_flat_parameters(model.get_flat_parameters() - 0.3 * gradient)
        holdout = make_mismatched_space(reference, n_samples=600, rng=rng)
        accuracy = float(np.mean(model.predict(holdout.features) == holdout.labels))
        assert accuracy < 0.45

    def test_rejects_nonpositive_samples(self, rng):
        reference = make_classification(20, 4, 2, rng=rng)
        with pytest.raises(ValueError):
            make_mismatched_space(reference, n_samples=0, rng=rng)


class TestRegistry:
    def test_four_paper_datasets_registered(self):
        names = available_datasets()
        for name in ("mnist_like", "fashion_like", "usps_like", "colorectal_like"):
            assert name in names

    @pytest.mark.parametrize("name", sorted(DATASET_SPECS))
    def test_load_every_dataset_small_scale(self, name):
        train, test = load_dataset(name, scale=0.05, seed=0)
        spec = DATASET_SPECS[name]
        assert train.num_classes == spec.n_classes
        assert train.dim == spec.n_features
        assert len(train) > 0 and len(test) > 0

    def test_scale_shrinks_sizes(self):
        large_train, _ = load_dataset("mnist_like", scale=0.5, seed=0)
        small_train, _ = load_dataset("mnist_like", scale=0.1, seed=0)
        assert len(small_train) < len(large_train)

    def test_scale_floor_keeps_minimum_examples(self):
        train, test = load_dataset("mnist_like", scale=1e-6, seed=0)
        assert len(train) >= 4 * 10
        assert len(test) >= 4 * 10

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            load_dataset("imagenet", scale=0.1)

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            load_dataset("mnist_like", scale=0.0)

    def test_same_seed_reproducible(self):
        a_train, a_test = load_dataset("usps_like", scale=0.1, seed=3)
        b_train, b_test = load_dataset("usps_like", scale=0.1, seed=3)
        np.testing.assert_array_equal(a_train.features, b_train.features)
        np.testing.assert_array_equal(a_test.labels, b_test.labels)

    def test_different_seeds_differ(self):
        a_train, _ = load_dataset("usps_like", scale=0.1, seed=3)
        b_train, _ = load_dataset("usps_like", scale=0.1, seed=4)
        assert not np.allclose(a_train.features, b_train.features)

    def test_split_sizes_close_to_requested(self):
        """The stratified split keeps train/test sizes close to the spec."""
        train, test = load_dataset("colorectal_like", scale=0.2, seed=1)
        spec = DATASET_SPECS["colorectal_like"]
        expected_train = max(4 * spec.n_classes, round(spec.train_size * 0.2))
        expected_test = max(4 * spec.n_classes, round(spec.test_size * 0.2))
        assert abs(len(train) - expected_train) <= spec.n_classes
        assert abs(len(test) - expected_test) <= spec.n_classes

    def test_every_class_present_in_test_split_at_tiny_scale(self):
        """The server can always draw 2 auxiliary samples per class."""
        for name in ("mnist_like", "usps_like", "colorectal_like", "fashion_like"):
            _, test = load_dataset(name, scale=0.02, seed=0)
            assert test.class_counts().min() >= 2

    def test_mnist_like_sizes_mirror_paper_ratios(self):
        """MNIST-like is the largest dataset; Colorectal-like the smallest."""
        sizes = {
            name: DATASET_SPECS[name].train_size
            for name in ("mnist_like", "fashion_like", "usps_like", "colorectal_like")
        }
        assert sizes["mnist_like"] == sizes["fashion_like"]
        assert sizes["usps_like"] < sizes["mnist_like"]
        assert sizes["colorectal_like"] < sizes["usps_like"]

    def test_colorectal_has_eight_classes(self):
        assert DATASET_SPECS["colorectal_like"].n_classes == 8

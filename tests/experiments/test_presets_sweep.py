"""Tests for the experiment presets, the sweep helpers and the paper constants."""

from __future__ import annotations

import math

import pytest

from repro.analysis import paper
from repro.experiments.configs import ExperimentConfig
from repro.experiments.presets import (
    BYZANTINE_LEVELS,
    PAPER_EPSILONS,
    benchmark_preset,
    exact_gamma,
    paper_preset,
)
from repro.experiments.sweep import accuracy_grid, run_grid, series_from_grid


class TestExactGamma:
    def test_complement_of_byzantine_fraction(self):
        assert exact_gamma(0.6) == pytest.approx(0.4)
        assert exact_gamma(0.0) == pytest.approx(1.0)

    def test_floor_for_extreme_fractions(self):
        assert exact_gamma(0.99) >= 0.05

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            exact_gamma(1.0)


class TestBenchmarkPreset:
    def test_returns_config(self):
        assert isinstance(benchmark_preset(), ExperimentConfig)

    def test_gamma_defaults_to_exact(self):
        config = benchmark_preset(byzantine_fraction=0.6)
        assert config.gamma == pytest.approx(0.4)

    def test_gamma_override(self):
        config = benchmark_preset(byzantine_fraction=0.6, gamma=0.8)
        assert config.gamma == 0.8

    def test_overrides_forwarded(self):
        config = benchmark_preset(iid=False, epochs=2, scale=0.2)
        assert not config.iid
        assert config.epochs == 2
        assert config.scale == 0.2

    def test_fast_defaults(self):
        config = benchmark_preset()
        assert config.model == "linear"
        assert config.scale < 1.0

    @pytest.mark.parametrize("dataset", ["mnist_like", "fashion_like", "usps_like", "colorectal_like"])
    def test_every_dataset_accepted(self, dataset):
        assert benchmark_preset(dataset=dataset).dataset == dataset


class TestPaperPreset:
    def test_mnist_settings(self):
        config = paper_preset("mnist_like")
        assert config.n_honest == 20
        assert config.epochs == 8
        assert config.scale == 1.0
        assert config.base_lr == pytest.approx(0.2)
        assert config.batch_size == 16

    def test_usps_settings(self):
        config = paper_preset("usps_like")
        assert config.n_honest == 10
        assert config.epochs == 10

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            paper_preset("cifar100")

    def test_constants(self):
        assert PAPER_EPSILONS == (0.125, 0.25, 0.5, 1.0, 2.0)
        assert 0.9 in BYZANTINE_LEVELS


class TestSweep:
    def make_grid(self):
        base = benchmark_preset(scale=0.05, epochs=1, n_honest=3)
        return {
            ("mnist_like", 2.0): base,
            ("mnist_like", 0.5): base.replace(epsilon=0.5),
        }

    def test_run_grid_returns_all_cells(self):
        results = run_grid(self.make_grid())
        assert set(results) == {("mnist_like", 2.0), ("mnist_like", 0.5)}
        assert all(len(cell) == 1 for cell in results.values())

    def test_run_grid_multiple_seeds(self):
        grid = {"cell": benchmark_preset(scale=0.05, epochs=1, n_honest=3)}
        results = run_grid(grid, seeds=[1, 2])
        assert len(results["cell"]) == 2
        assert [run.seed for run in results["cell"]] == [1, 2]

    def test_progress_callback_invoked(self):
        calls = []
        run_grid(self.make_grid(), progress=lambda key, result: calls.append(key))
        assert len(calls) == 2

    def test_generator_seeds_not_exhausted_by_first_cell(self):
        """Regression: ``list(seeds)`` used to run inside the per-cell loop,
        so a generator argument was drained by the first cell and later
        cells silently ran zero seeds."""
        results = run_grid(self.make_grid(), seeds=(seed for seed in [1, 2]))
        assert all(len(cell) == 2 for cell in results.values())
        for cell in results.values():
            assert [run.seed for run in cell] == [1, 2]

    def test_parallel_matches_serial(self):
        """Process-parallel sweeps return exactly the serial results."""
        grid = self.make_grid()
        serial = run_grid(grid, seeds=[1, 2])
        parallel = run_grid(grid, seeds=[1, 2], max_workers=2)
        assert list(parallel) == list(serial)
        for key in serial:
            assert [run.seed for run in parallel[key]] == [
                run.seed for run in serial[key]
            ]
            assert [run.final_accuracy for run in parallel[key]] == [
                run.final_accuracy for run in serial[key]
            ]

    def test_parallel_progress_invoked_in_parent(self):
        calls = []
        run_grid(
            self.make_grid(),
            max_workers=2,
            progress=lambda key, result: calls.append(key),
        )
        assert sorted(calls) == sorted(self.make_grid())

    def test_rejects_nonpositive_max_workers(self):
        with pytest.raises(ValueError):
            run_grid(self.make_grid(), max_workers=0)

    def test_accuracy_grid_means(self):
        results = run_grid(self.make_grid())
        accuracies = accuracy_grid(results)
        assert set(accuracies) == set(results)
        assert all(0.0 <= value <= 1.0 for value in accuracies.values())

    def test_series_from_grid_orders_and_fills_missing(self):
        accuracies = {("a", 1): 0.5, ("a", 2): 0.7}
        series = series_from_grid(accuracies, [1, 2, 3], key_for=lambda x: ("a", x))
        assert series[:2] == [0.5, 0.7]
        assert math.isnan(series[2])


class TestPaperConstants:
    def test_table4_has_all_datasets(self):
        assert set(paper.TABLE4_SIDE_EFFECT) == {
            "mnist_like", "colorectal_like", "fashion_like", "usps_like"
        }

    def test_table4_values_are_probabilities(self):
        for dataset_values in paper.TABLE4_SIDE_EFFECT.values():
            for reference, protocol in dataset_values.values():
                assert 0.0 <= reference <= 1.0
                assert 0.0 <= protocol <= 1.0

    def test_figure1_monotone_in_epsilon(self):
        """The paper's curves improve (weakly) as epsilon grows."""
        for dataset, curve in paper.FIGURE1_LABEL_FLIP.items():
            values = [curve[eps] for eps in sorted(curve)]
            assert all(a <= b + 0.02 for a, b in zip(values, values[1:])), dataset

    def test_table1_ours_is_only_fully_checked_method(self):
        fully_checked = [
            name
            for name, props in paper.TABLE1_PROPERTIES.items()
            if props["private"] and props["majority_resilient"]
        ]
        assert fully_checked == ["two_stage (ours)"]

    def test_table2_ours_beats_baseline(self):
        ours = [v for k, v in paper.TABLE2_VS_GUERRAOUI.items() if k[0] == "ours"]
        baseline = [v for k, v in paper.TABLE2_VS_GUERRAOUI.items() if k[0] != "ours"]
        assert min(ours) > min(baseline)

    def test_table3_ours_beats_baseline(self):
        ours = [v for k, v in paper.TABLE3_VS_ZHU_LING.items() if k[0] == "ours"]
        baseline = [v for k, v in paper.TABLE3_VS_ZHU_LING.items() if k[0] != "ours"]
        assert min(ours) > max(baseline)

    def test_table17_mismatch_destroys_utility(self):
        """With mismatched auxiliary data the paper reports near-chance accuracy."""
        for dataset_values in paper.TABLE17_AUX_MISMATCH.values():
            assert max(dataset_values.values()) <= 0.25


class TestDropoutSweep:
    def test_grid_shape_and_keys(self):
        from repro.experiments.presets import DROPOUT_RATES, dropout_sweep

        grid = dropout_sweep()
        assert set(grid) == {
            (defense, rate)
            for defense in ("two_stage", "mean")
            for rate in DROPOUT_RATES
        }

    def test_zero_rate_cell_stays_on_reference_path(self):
        from repro.experiments.presets import dropout_sweep

        grid = dropout_sweep(rates=(0.0, 0.2), defenses=("two_stage",))
        clean = grid[("two_stage", 0.0)]
        assert clean.faults == "none"
        assert clean.faults_kwargs == {}

    def test_nonzero_cells_configure_dropout(self):
        from repro.experiments.presets import dropout_sweep

        grid = dropout_sweep(rates=(0.2,), defenses=("mean",), min_quorum=0.5)
        config = grid[("mean", 0.2)]
        assert config.faults == "dropout"
        assert config.faults_kwargs == {"rate": 0.2}
        assert config.min_quorum == pytest.approx(0.5)
        assert config.attack == "lmp"

    def test_rejects_invalid_rate(self):
        from repro.experiments.presets import dropout_sweep

        with pytest.raises(ValueError):
            dropout_sweep(rates=(1.0,))

    def test_overrides_reach_every_cell(self):
        from repro.experiments.presets import dropout_sweep

        grid = dropout_sweep(rates=(0.0, 0.1), defenses=("mean",), epochs=2)
        assert all(config.epochs == 2 for config in grid.values())

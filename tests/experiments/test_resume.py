"""Checkpoint/resume: Checkpoint snapshots restore into prepare_experiment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.configs import ExperimentConfig
from repro.experiments.runner import (
    prepare_experiment,
    resolve_checkpoint,
    run_experiment,
)
from repro.federated.pipeline import Checkpoint

CONFIG = ExperimentConfig(
    dataset="usps_like",
    scale=0.2,
    n_honest=4,
    model="linear",
    epochs=1,
    epsilon=1.0,
    eval_every=2,
    seed=3,
)


class TestResolveCheckpoint:
    def test_tuple_passes_through(self):
        vector = np.arange(5.0)
        round_index, parameters = resolve_checkpoint((7, vector))
        assert round_index == 7
        np.testing.assert_array_equal(parameters, vector)

    def test_file_round_parsed_from_name(self, tmp_path):
        vector = np.arange(4.0)
        path = tmp_path / "round_12.npy"
        np.save(path, vector)
        round_index, parameters = resolve_checkpoint(path)
        assert round_index == 12
        np.testing.assert_array_equal(parameters, vector)

    def test_directory_picks_latest_round(self, tmp_path):
        for index in (0, 3, 11):
            np.save(tmp_path / f"round_{index}.npy", np.full(3, float(index)))
        round_index, parameters = resolve_checkpoint(tmp_path)
        assert round_index == 11
        np.testing.assert_array_equal(parameters, np.full(3, 11.0))

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            resolve_checkpoint(tmp_path)

    def test_unparseable_name_raises(self, tmp_path):
        path = tmp_path / "weights.npy"
        np.save(path, np.zeros(2))
        with pytest.raises(ValueError, match="round index"):
            resolve_checkpoint(path)


class TestResumeRoundTrip:
    def test_resume_restores_parameters_and_round_counter(self, tmp_path):
        """The satellite round-trip: run with Checkpoint, resume, continue."""
        checkpoint = Checkpoint(every=2, directory=tmp_path)
        first = run_experiment(CONFIG, callbacks=[checkpoint])
        total_rounds = first.metadata["total_rounds"]
        assert total_rounds > 2
        snapshot_round = sorted(checkpoint.snapshots)[0]

        setup = prepare_experiment(
            CONFIG, resume_from=tmp_path / f"round_{snapshot_round}.npy"
        )
        np.testing.assert_array_equal(
            setup.simulation.model.get_flat_parameters(),
            checkpoint.snapshots[snapshot_round],
        )
        assert setup.simulation.start_round == snapshot_round + 1
        assert setup.simulation.server.round_index == snapshot_round + 1

        history = setup.simulation.run()
        assert history.rounds, "resumed run recorded no evaluations"
        assert min(history.rounds) > snapshot_round
        assert history.rounds[-1] == total_rounds - 1

    def test_resume_from_final_snapshot_evaluates_once(self, tmp_path):
        checkpoint = Checkpoint(every=10**6, directory=tmp_path)  # final only
        first = run_experiment(CONFIG, callbacks=[checkpoint])
        final_round = first.metadata["total_rounds"] - 1
        assert list(checkpoint.snapshots) == [final_round]

        resumed = run_experiment(CONFIG, resume_from=tmp_path)
        assert resumed.history.rounds == [final_round]
        assert resumed.final_accuracy == pytest.approx(first.final_accuracy)

    def test_resume_rejects_out_of_schedule_round(self):
        with pytest.raises(ValueError, match="outside the schedule"):
            prepare_experiment(CONFIG, resume_from=(10**6, np.zeros(1)))

    def test_cli_resume_flag(self, tmp_path, capsys):
        from repro.cli import main

        arguments = [
            "run", "--dataset", "usps_like", "--byzantine", "0.0",
            "--attack", "none", "--epochs", "1", "--seed", "1",
        ]
        # Produce snapshots through the runner, then resume via the CLI.
        from repro.experiments.presets import benchmark_preset

        config = benchmark_preset(
            dataset="usps_like", byzantine_fraction=0.0, attack="none",
            epochs=1, seed=1,
        )
        checkpoint = Checkpoint(every=2, directory=tmp_path)
        run_experiment(config, callbacks=[checkpoint])
        assert main([*arguments, "--resume-from", str(tmp_path)]) == 0
        assert "final test accuracy" in capsys.readouterr().out

    def test_cli_resume_bad_path_exits_cleanly(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="cannot resume"):
            main([
                "run", "--dataset", "usps_like", "--epochs", "1",
                "--resume-from", str(tmp_path / "missing"),
            ])

    def test_cli_resume_out_of_schedule_exits_cleanly(self, tmp_path):
        from repro.cli import main

        np.save(tmp_path / "round_500000.npy", np.zeros(3))
        with pytest.raises(SystemExit, match="cannot resume"):
            main([
                "run", "--dataset", "usps_like", "--epochs", "1",
                "--resume-from", str(tmp_path / "round_500000.npy"),
            ])

    def test_cli_resume_wrong_dimension_exits_cleanly(self, tmp_path):
        from repro.cli import main

        np.save(tmp_path / "round_0.npy", np.zeros(3))
        with pytest.raises(SystemExit, match="cannot resume"):
            main([
                "run", "--dataset", "usps_like", "--epochs", "1",
                "--resume-from", str(tmp_path / "round_0.npy"),
            ])

    def test_cli_compare_rejects_resume_flag(self, tmp_path):
        """compare has no well-defined resume semantics; the parser refuses."""
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args([
                "compare", "--resume-from", str(tmp_path / "round_0.npy"),
            ])

    def test_mismatched_parameters_raise_checkpoint_error(self):
        from repro.experiments.runner import CheckpointMismatchError

        with pytest.raises(CheckpointMismatchError, match="do not fit"):
            prepare_experiment(CONFIG, resume_from=(0, np.zeros(3)))

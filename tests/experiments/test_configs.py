"""Tests for ExperimentConfig."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.experiments.configs import ExperimentConfig
from repro.experiments.presets import (
    BYZANTINE_LEVELS,
    benchmark_preset,
    paper_preset,
)

#: Every preset family x dataset, with non-trivial attack/defense kwargs.
ALL_PRESETS = {}
for dataset in ("mnist_like", "fashion_like", "usps_like", "colorectal_like"):
    for fraction in (0.0, *BYZANTINE_LEVELS):
        key = f"benchmark-{dataset}-{fraction}"
        ALL_PRESETS[key] = benchmark_preset(
            dataset=dataset,
            byzantine_fraction=fraction,
            attack="none" if fraction == 0.0 else "adaptive_lmp",
            ttbb=0.0 if fraction == 0.0 else 0.5,
            attack_kwargs={} if fraction == 0.0 else {"lambda_override": 2.0},
            defense_kwargs={"ks_significance": 0.1},
        )
        ALL_PRESETS[f"paper-{dataset}-{fraction}"] = paper_preset(
            dataset=dataset,
            byzantine_fraction=fraction,
            attack="none" if fraction == 0.0 else "lmp",
            epsilon=0.25,
        )


class TestDefaults:
    def test_paper_defaults(self):
        config = ExperimentConfig()
        assert config.batch_size == 16
        assert config.momentum == pytest.approx(0.1)
        assert config.base_lr == pytest.approx(0.2)
        assert config.base_epsilon == pytest.approx(2.0)
        assert config.aux_per_class == 2
        assert config.bounding == "normalize"
        assert config.iid

    def test_frozen(self):
        config = ExperimentConfig()
        with pytest.raises(Exception):
            config.epsilon = 5.0  # type: ignore[misc]


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"byzantine_fraction": 1.0},
            {"byzantine_fraction": -0.1},
            {"n_honest": 0},
            {"epsilon": 0.0},
            {"epsilon": -1.0},
            {"epochs": 0},
            {"gamma": 0.0},
            {"gamma": 1.2},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ExperimentConfig(**kwargs)

    def test_epsilon_none_is_non_private(self):
        assert ExperimentConfig(epsilon=None).epsilon is None


class TestByzantineCount:
    def test_zero_fraction(self):
        assert ExperimentConfig(byzantine_fraction=0.0).n_byzantine == 0

    def test_twenty_percent(self):
        config = ExperimentConfig(n_honest=20, byzantine_fraction=0.2)
        assert config.n_byzantine == 5  # 5 / 25 = 20%

    def test_sixty_percent(self):
        config = ExperimentConfig(n_honest=20, byzantine_fraction=0.6)
        assert config.n_byzantine == 30  # 30 / 50 = 60%

    def test_ninety_percent(self):
        config = ExperimentConfig(n_honest=20, byzantine_fraction=0.9)
        assert config.n_byzantine == 180  # 180 / 200 = 90%

    def test_fraction_recovered(self):
        for fraction in (0.2, 0.4, 0.6, 0.9):
            config = ExperimentConfig(n_honest=10, byzantine_fraction=fraction)
            total = config.n_honest + config.n_byzantine
            assert config.n_byzantine / total == pytest.approx(fraction, abs=0.05)

    def test_at_least_one_byzantine_for_tiny_fractions(self):
        config = ExperimentConfig(n_honest=5, byzantine_fraction=0.01)
        assert config.n_byzantine == 1


class TestReplace:
    def test_replace_changes_field(self):
        config = ExperimentConfig(epsilon=1.0)
        replaced = config.replace(epsilon=0.25)
        assert replaced.epsilon == 0.25
        assert config.epsilon == 1.0

    def test_replace_preserves_other_fields(self):
        config = ExperimentConfig(dataset="usps_like", gamma=0.4)
        replaced = config.replace(epsilon=0.5)
        assert replaced.dataset == "usps_like"
        assert replaced.gamma == 0.4

    def test_replace_validates(self):
        with pytest.raises(ValueError):
            ExperimentConfig().replace(gamma=2.0)


class TestSerialization:
    def test_to_dict_contains_every_field(self):
        config = ExperimentConfig()
        data = config.to_dict()
        assert data["dataset"] == "mnist_like"
        assert data["attack_kwargs"] == {}
        assert set(data) == {f.name for f in dataclasses.fields(ExperimentConfig)}

    def test_to_dict_copies_kwargs(self):
        config = ExperimentConfig(attack_kwargs={"scale": 2.0})
        data = config.to_dict()
        data["attack_kwargs"]["scale"] = 99.0
        assert config.attack_kwargs == {"scale": 2.0}

    def test_from_dict_round_trip(self):
        config = ExperimentConfig(dataset="usps_like", epsilon=None, gamma=0.4)
        assert ExperimentConfig.from_dict(config.to_dict()) == config

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(TypeError) as excinfo:
            ExperimentConfig.from_dict({"dataset": "usps_like", "datasets": "oops"})
        assert "datasets" in str(excinfo.value)

    def test_from_dict_rejects_non_mapping(self):
        with pytest.raises(TypeError):
            ExperimentConfig.from_dict(["dataset"])  # type: ignore[arg-type]

    def test_from_dict_validates_values(self):
        with pytest.raises(ValueError):
            ExperimentConfig.from_dict({"gamma": 2.0})

    def test_from_json_rejects_non_object(self):
        with pytest.raises(TypeError):
            ExperimentConfig.from_json("[1, 2]")

    def test_json_is_stable_and_parseable(self):
        text = ExperimentConfig().to_json()
        assert json.loads(text)["dataset"] == "mnist_like"
        assert ExperimentConfig().to_json() == text

    @pytest.mark.parametrize("key", sorted(ALL_PRESETS), ids=str)
    def test_every_preset_round_trips_via_dict(self, key):
        config = ALL_PRESETS[key]
        assert ExperimentConfig.from_dict(config.to_dict()) == config

    @pytest.mark.parametrize("key", sorted(ALL_PRESETS), ids=str)
    def test_every_preset_round_trips_via_json(self, key):
        config = ALL_PRESETS[key]
        restored = ExperimentConfig.from_json(config.to_json())
        assert restored == config
        # Exactness, field by field (== on the dataclass already implies
        # this; spelled out so a failure names the offending field).
        for field_name, value in config.to_dict().items():
            assert getattr(restored, field_name) == value, field_name

    def test_backend_fields_survive_json_round_trip(self):
        config = ExperimentConfig(
            backend="threaded", backend_kwargs={"max_workers": 4}
        )
        restored = ExperimentConfig.from_json(config.to_json())
        assert restored.backend == "threaded"
        assert restored.backend_kwargs == {"max_workers": 4}
        assert ExperimentConfig().backend == "serial"

    def test_kwargs_survive_json_round_trip(self):
        config = benchmark_preset(
            attack="gaussian",
            byzantine_fraction=0.4,
            attack_kwargs={"scale": 1.5},
            defense_kwargs={"ks_significance": 0.01, "use_second_stage": False},
        )
        restored = ExperimentConfig.from_json(config.to_json())
        assert restored.attack_kwargs == {"scale": 1.5}
        assert restored.defense_kwargs == {
            "ks_significance": 0.01,
            "use_second_stage": False,
        }


class TestFaultFields:
    def test_defaults_are_fault_free(self):
        config = ExperimentConfig()
        assert config.faults == "none"
        assert config.faults_kwargs == {}
        assert config.min_quorum == 1
        assert config.retry_kwargs == {}

    def test_fault_fields_survive_json_round_trip(self):
        config = ExperimentConfig(
            faults="chaos",
            faults_kwargs={"dropout": 0.2, "crash": 0.1},
            min_quorum=0.25,
            retry_kwargs={"max_attempts": 4},
        )
        restored = ExperimentConfig.from_json(config.to_json())
        assert restored.faults == "chaos"
        assert restored.faults_kwargs == {"dropout": 0.2, "crash": 0.1}
        assert restored.min_quorum == pytest.approx(0.25)
        assert restored.retry_kwargs == {"max_attempts": 4}

    @pytest.mark.parametrize("bad", [0, -2, 0.0, 1.5, -0.1])
    def test_invalid_min_quorum_rejected(self, bad):
        with pytest.raises(ValueError):
            ExperimentConfig(min_quorum=bad)

    def test_boolean_min_quorum_rejected(self):
        with pytest.raises(TypeError):
            ExperimentConfig(min_quorum=True)

"""Tests for ExperimentConfig."""

from __future__ import annotations

import pytest

from repro.experiments.configs import ExperimentConfig


class TestDefaults:
    def test_paper_defaults(self):
        config = ExperimentConfig()
        assert config.batch_size == 16
        assert config.momentum == pytest.approx(0.1)
        assert config.base_lr == pytest.approx(0.2)
        assert config.base_epsilon == pytest.approx(2.0)
        assert config.aux_per_class == 2
        assert config.bounding == "normalize"
        assert config.iid

    def test_frozen(self):
        config = ExperimentConfig()
        with pytest.raises(Exception):
            config.epsilon = 5.0  # type: ignore[misc]


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"byzantine_fraction": 1.0},
            {"byzantine_fraction": -0.1},
            {"n_honest": 0},
            {"epsilon": 0.0},
            {"epsilon": -1.0},
            {"epochs": 0},
            {"gamma": 0.0},
            {"gamma": 1.2},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ExperimentConfig(**kwargs)

    def test_epsilon_none_is_non_private(self):
        assert ExperimentConfig(epsilon=None).epsilon is None


class TestByzantineCount:
    def test_zero_fraction(self):
        assert ExperimentConfig(byzantine_fraction=0.0).n_byzantine == 0

    def test_twenty_percent(self):
        config = ExperimentConfig(n_honest=20, byzantine_fraction=0.2)
        assert config.n_byzantine == 5  # 5 / 25 = 20%

    def test_sixty_percent(self):
        config = ExperimentConfig(n_honest=20, byzantine_fraction=0.6)
        assert config.n_byzantine == 30  # 30 / 50 = 60%

    def test_ninety_percent(self):
        config = ExperimentConfig(n_honest=20, byzantine_fraction=0.9)
        assert config.n_byzantine == 180  # 180 / 200 = 90%

    def test_fraction_recovered(self):
        for fraction in (0.2, 0.4, 0.6, 0.9):
            config = ExperimentConfig(n_honest=10, byzantine_fraction=fraction)
            total = config.n_honest + config.n_byzantine
            assert config.n_byzantine / total == pytest.approx(fraction, abs=0.05)

    def test_at_least_one_byzantine_for_tiny_fractions(self):
        config = ExperimentConfig(n_honest=5, byzantine_fraction=0.01)
        assert config.n_byzantine == 1


class TestReplace:
    def test_replace_changes_field(self):
        config = ExperimentConfig(epsilon=1.0)
        replaced = config.replace(epsilon=0.25)
        assert replaced.epsilon == 0.25
        assert config.epsilon == 1.0

    def test_replace_preserves_other_fields(self):
        config = ExperimentConfig(dataset="usps_like", gamma=0.4)
        replaced = config.replace(epsilon=0.5)
        assert replaced.dataset == "usps_like"
        assert replaced.gamma == 0.4

    def test_replace_validates(self):
        with pytest.raises(ValueError):
            ExperimentConfig().replace(gamma=2.0)

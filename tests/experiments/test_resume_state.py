"""Full-state snapshots: bitwise-exact resume after a coordinator crash.

Parameter-only ``round_<i>.npy`` resume (a faithful *continuation*) is
covered by ``test_resume.py``; here the full-state ``round_<i>.state.npz``
flavour must *replay*: a run restored mid-schedule finishes with the
final model bitwise equal to the uninterrupted process, fault trace
included.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.configs import ExperimentConfig
from repro.experiments.runner import (
    CheckpointMismatchError,
    prepare_experiment,
    resolve_checkpoint,
)
from repro.federated.pipeline import Checkpoint, RoundPipeline
from repro.federated.state import (
    STATE_SUFFIX,
    RoundState,
    load_round_state,
    save_round_state,
)

CONFIG = ExperimentConfig(
    dataset="usps_like",
    scale=0.2,
    n_honest=4,
    model="linear",
    epochs=1,
    epsilon=1.0,
    eval_every=2,
    seed=3,
    byzantine_fraction=0.4,
)

CHAOS_CONFIG = CONFIG.replace(
    faults="chaos",
    faults_kwargs={"seed": 11},
    min_quorum=1,
)


def run_to_completion(config, tmp_path=None, resume_from=None):
    """Run (or finish) an experiment; returns (history, final_parameters)."""
    callbacks = []
    if tmp_path is not None:
        callbacks.append(Checkpoint(every=1, directory=tmp_path, full_state=True))
    setup = prepare_experiment(config, resume_from=resume_from)
    try:
        history = setup.simulation.run(callbacks)
        parameters = setup.simulation.model.get_flat_parameters().copy()
    finally:
        setup.simulation.close()
    return history, parameters


class TestSnapshotFile:
    def make_state(self, round_index=2, d=6, n=3, with_optionals=True):
        rng = np.random.default_rng(0)
        return RoundState(
            round_index=round_index,
            parameters=rng.standard_normal(d),
            server_rng=np.random.default_rng(1).bit_generator.state,
            attack_rng=np.random.default_rng(2).bit_generator.state,
            honest_momentum=rng.standard_normal((n, d)),
            honest_batch_size=4,
            honest_rngs=[
                np.random.default_rng(10 + i).bit_generator.state
                for i in range(n)
            ],
            byzantine_momentum=rng.standard_normal((2, d)) if with_optionals else None,
            byzantine_batch_size=4 if with_optionals else None,
            byzantine_rngs=(
                [np.random.default_rng(20 + i).bit_generator.state for i in range(2)]
                if with_optionals else None
            ),
            pending=(
                (np.array([1, 2]), rng.standard_normal((2, d)))
                if with_optionals else None
            ),
        )

    @pytest.mark.parametrize("with_optionals", [True, False])
    def test_round_trip_is_bitwise(self, tmp_path, with_optionals):
        state = self.make_state(with_optionals=with_optionals)
        path = save_round_state(state, tmp_path / f"round_2{STATE_SUFFIX}")
        loaded = load_round_state(path)
        assert loaded.round_index == state.round_index
        np.testing.assert_array_equal(loaded.parameters, state.parameters)
        np.testing.assert_array_equal(loaded.honest_momentum, state.honest_momentum)
        assert loaded.honest_batch_size == state.honest_batch_size
        assert loaded.server_rng == state.server_rng
        assert loaded.attack_rng == state.attack_rng
        assert loaded.honest_rngs == state.honest_rngs
        if with_optionals:
            np.testing.assert_array_equal(
                loaded.byzantine_momentum, state.byzantine_momentum
            )
            assert loaded.byzantine_rngs == state.byzantine_rngs
            np.testing.assert_array_equal(loaded.pending[0], state.pending[0])
            np.testing.assert_array_equal(loaded.pending[1], state.pending[1])
        else:
            assert loaded.byzantine_momentum is None
            assert loaded.byzantine_rngs is None
            assert loaded.pending is None

    def test_write_is_atomic_no_temp_left_behind(self, tmp_path):
        save_round_state(self.make_state(), tmp_path / f"round_2{STATE_SUFFIX}")
        leftovers = [p.name for p in tmp_path.iterdir()]
        assert leftovers == [f"round_2{STATE_SUFFIX}"]

    def test_overwrite_replaces_previous_snapshot(self, tmp_path):
        path = tmp_path / f"round_2{STATE_SUFFIX}"
        save_round_state(self.make_state(), path)
        newer = self.make_state()
        newer.parameters = np.full(6, 42.0)
        save_round_state(newer, path)
        np.testing.assert_array_equal(
            load_round_state(path).parameters, np.full(6, 42.0)
        )


class TestResolveStateCheckpoints:
    def test_state_file_resolves_to_round_state(self, tmp_path):
        state = TestSnapshotFile().make_state(round_index=5)
        path = save_round_state(state, tmp_path / f"round_5{STATE_SUFFIX}")
        round_index, payload = resolve_checkpoint(path)
        assert round_index == 5
        assert isinstance(payload, RoundState)

    def test_directory_prefers_state_over_npy_on_same_round(self, tmp_path):
        np.save(tmp_path / "round_3.npy", np.zeros(4))
        save_round_state(
            TestSnapshotFile().make_state(round_index=3),
            tmp_path / f"round_3{STATE_SUFFIX}",
        )
        np.save(tmp_path / "round_1.npy", np.zeros(4))
        round_index, payload = resolve_checkpoint(tmp_path)
        assert round_index == 3
        assert isinstance(payload, RoundState)

    def test_directory_latest_round_wins_across_flavours(self, tmp_path):
        save_round_state(
            TestSnapshotFile().make_state(round_index=2),
            tmp_path / f"round_2{STATE_SUFFIX}",
        )
        np.save(tmp_path / "round_7.npy", np.full(4, 7.0))
        round_index, payload = resolve_checkpoint(tmp_path)
        assert round_index == 7
        assert isinstance(payload, np.ndarray)


class TestBitwiseResume:
    def test_resume_mid_schedule_is_bitwise_identical(self, tmp_path):
        """The headline guarantee: kill after round k, restart, same bits."""
        reference_history, reference_parameters = run_to_completion(
            CONFIG, tmp_path=tmp_path
        )
        total = len(reference_history.rounds)
        assert total >= 2
        snapshots = sorted(
            int(p.name[len("round_"):-len(STATE_SUFFIX)])
            for p in tmp_path.glob(f"round_*{STATE_SUFFIX}")
        )
        middle = snapshots[len(snapshots) // 2 - 1]

        resumed_history, resumed_parameters = run_to_completion(
            CONFIG, resume_from=tmp_path / f"round_{middle}{STATE_SUFFIX}"
        )
        np.testing.assert_array_equal(resumed_parameters, reference_parameters)
        # Post-resume evaluations match the uninterrupted run exactly.
        tail = {
            r: a for r, a in zip(
                reference_history.rounds, reference_history.test_accuracy
            ) if r > middle
        }
        for r, a in zip(resumed_history.rounds, resumed_history.test_accuracy):
            assert tail[r] == a

    def test_resume_from_directory_uses_latest_snapshot(self, tmp_path):
        reference_history, reference_parameters = run_to_completion(
            CONFIG, tmp_path=tmp_path
        )
        resumed_history, resumed_parameters = run_to_completion(
            CONFIG, resume_from=tmp_path
        )
        # The latest snapshot is the final round: nothing left to train,
        # but the restored model must already hold the final bits.
        np.testing.assert_array_equal(resumed_parameters, reference_parameters)

    def test_chaos_resume_replays_identical_fault_trace(self, tmp_path):
        """Under --faults chaos the replayed rounds repeat the same faults
        and land on the same final accuracy (the satellite criterion)."""
        reference_history, reference_parameters = run_to_completion(
            CHAOS_CONFIG, tmp_path=tmp_path
        )
        assert reference_history.faults  # chaos actually injected faults
        snapshots = sorted(
            int(p.name[len("round_"):-len(STATE_SUFFIX)])
            for p in tmp_path.glob(f"round_*{STATE_SUFFIX}")
        )
        middle = snapshots[len(snapshots) // 2 - 1]
        resumed_history, resumed_parameters = run_to_completion(
            CHAOS_CONFIG,
            resume_from=tmp_path / f"round_{middle}{STATE_SUFFIX}",
        )
        np.testing.assert_array_equal(resumed_parameters, reference_parameters)
        assert resumed_history.final_accuracy == reference_history.final_accuracy
        reference_tail = [
            entry for entry in reference_history.faults
            if entry["round"] > middle
        ]
        assert resumed_history.faults == reference_tail

    def test_pending_straggler_buffer_survives_the_round_trip(self, tmp_path):
        setup = prepare_experiment(CONFIG)
        try:
            d = setup.simulation.model.num_parameters
            pending = (np.array([0, 2]), np.ones((2, d)))
            state = setup.simulation.capture_round_state(1, pending=pending)
            path = save_round_state(state, tmp_path / f"round_1{STATE_SUFFIX}")
        finally:
            setup.simulation.close()

        resumed = prepare_experiment(CONFIG, resume_from=path)
        try:
            pipeline = RoundPipeline(resumed.simulation)
            assert pipeline._pending is not None
            np.testing.assert_array_equal(pipeline._pending[0], pending[0])
            np.testing.assert_array_equal(pipeline._pending[1], pending[1])
            # Consumed exactly once: a second pipeline starts empty.
            assert RoundPipeline(resumed.simulation)._pending is None
        finally:
            resumed.simulation.close()


class TestMismatchedSnapshots:
    def test_wrong_worker_count_raises_checkpoint_mismatch(self, tmp_path):
        setup = prepare_experiment(CONFIG)
        try:
            state = setup.simulation.capture_round_state(0)
            path = save_round_state(state, tmp_path / f"round_0{STATE_SUFFIX}")
        finally:
            setup.simulation.close()
        with pytest.raises(CheckpointMismatchError, match="honest workers"):
            prepare_experiment(CONFIG.replace(n_honest=6), resume_from=path)

    def test_round_outside_schedule_raises(self, tmp_path):
        state = TestSnapshotFile().make_state(round_index=999)
        path = save_round_state(state, tmp_path / f"round_999{STATE_SUFFIX}")
        with pytest.raises(CheckpointMismatchError, match="outside the schedule"):
            prepare_experiment(CONFIG, resume_from=path)

"""Tests for the experiment runner (kept tiny so they run in seconds)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.results import RunResult
from repro.experiments.configs import ExperimentConfig
from repro.experiments.reference import reference_accuracy, reference_config
from repro.experiments.runner import run_experiment, run_seeds


TINY = ExperimentConfig(
    dataset="usps_like",
    scale=0.05,
    n_honest=4,
    model="linear",
    epochs=1,
    epsilon=1.0,
    seed=1,
)


class TestRunExperiment:
    def test_returns_run_result(self):
        result = run_experiment(TINY)
        assert isinstance(result, RunResult)
        assert 0.0 <= result.final_accuracy <= 1.0

    def test_metadata_fields(self):
        result = run_experiment(TINY)
        for key in (
            "total_rounds",
            "delta",
            "n_byzantine",
            "n_honest",
            "local_dataset_size",
            "model_size",
        ):
            assert key in result.metadata
        assert result.metadata["n_honest"] == 4
        assert result.metadata["n_byzantine"] == 0

    def test_dp_run_has_positive_sigma(self):
        result = run_experiment(TINY)
        assert result.sigma > 0.0
        assert result.epsilon == 1.0

    def test_non_dp_run_has_zero_sigma(self):
        result = run_experiment(TINY.replace(epsilon=None))
        assert result.sigma == 0.0
        assert result.epsilon is None
        assert result.metadata["delta"] is None

    def test_delta_defaults_to_paper_convention(self):
        result = run_experiment(TINY)
        local_size = result.metadata["local_dataset_size"]
        assert result.metadata["delta"] == pytest.approx(1.0 / local_size**1.1)

    def test_explicit_delta_respected(self):
        result = run_experiment(TINY.replace(delta=1e-3))
        assert result.metadata["delta"] == pytest.approx(1e-3)

    def test_learning_rate_transfer(self):
        """eta * sigma is constant across privacy levels (Claim 6)."""
        loose = run_experiment(TINY.replace(epsilon=2.0))
        tight = run_experiment(TINY.replace(epsilon=0.5))
        assert tight.sigma > loose.sigma
        assert loose.learning_rate * loose.sigma == pytest.approx(
            tight.learning_rate * tight.sigma, rel=1e-6
        )

    def test_seed_override(self):
        result = run_experiment(TINY, seed=7)
        assert result.seed == 7

    def test_reproducible(self):
        a = run_experiment(TINY)
        b = run_experiment(TINY)
        assert a.final_accuracy == b.final_accuracy
        assert a.sigma == b.sigma

    def test_byzantine_experiment_runs(self):
        config = TINY.replace(
            byzantine_fraction=0.5, attack="gaussian", defense="two_stage", gamma=0.5
        )
        result = run_experiment(config)
        assert result.metadata["n_byzantine"] == 4
        assert 0.0 <= result.final_accuracy <= 1.0

    def test_label_flip_experiment_runs(self):
        config = TINY.replace(
            byzantine_fraction=0.5, attack="label_flip", defense="two_stage", gamma=0.5
        )
        assert 0.0 <= run_experiment(config).final_accuracy <= 1.0

    def test_adaptive_attack_experiment_runs(self):
        config = TINY.replace(
            byzantine_fraction=0.5, attack="adaptive_gaussian", ttbb=0.5,
            defense="two_stage", gamma=0.5,
        )
        assert 0.0 <= run_experiment(config).final_accuracy <= 1.0

    def test_noniid_experiment_runs(self):
        assert 0.0 <= run_experiment(TINY.replace(iid=False)).final_accuracy <= 1.0

    def test_mismatched_auxiliary_runs(self):
        config = TINY.replace(aux_mismatched=True)
        assert 0.0 <= run_experiment(config).final_accuracy <= 1.0

    def test_clip_bounding_runs(self):
        config = TINY.replace(bounding="clip", clip_norm=1.0)
        assert 0.0 <= run_experiment(config).final_accuracy <= 1.0

    @pytest.mark.parametrize("defense", ["mean", "krum", "median", "trimmed_mean", "fltrust"])
    def test_baseline_defenses_run(self, defense):
        config = TINY.replace(
            byzantine_fraction=0.4, attack="gaussian", defense=defense, gamma=0.6
        )
        assert 0.0 <= run_experiment(config).final_accuracy <= 1.0

    def test_model_override(self):
        result = run_experiment(TINY.replace(model="mlp_small"))
        default = run_experiment(TINY)
        assert result.metadata["model_size"] > default.metadata["model_size"]

    def test_history_recorded(self):
        result = run_experiment(TINY)
        assert len(result.history.rounds) >= 1
        assert result.history.final_accuracy == result.final_accuracy


class TestRunSeeds:
    def test_summary_over_three_seeds(self):
        summary, runs = run_seeds(TINY, seeds=[1, 2, 3])
        assert summary.n_runs == 3
        assert len(runs) == 3
        assert summary.minimum <= summary.mean <= summary.maximum

    def test_default_seeds_are_one_two_three(self):
        summary, runs = run_seeds(TINY)
        assert [run.seed for run in runs] == [1, 2, 3]


class TestReference:
    def test_reference_config_strips_attack_and_defense(self):
        config = ExperimentConfig(
            byzantine_fraction=0.6, attack="lmp", defense="two_stage"
        )
        reference = reference_config(config)
        assert reference.byzantine_fraction == 0.0
        assert reference.attack == "none"
        assert reference.defense == "mean"

    def test_reference_preserves_privacy_setting(self):
        config = ExperimentConfig(epsilon=0.25, dataset="usps_like")
        assert reference_config(config).epsilon == 0.25
        assert reference_config(config).dataset == "usps_like"

    def test_reference_accuracy_runs(self):
        result = reference_accuracy(TINY.replace(byzantine_fraction=0.5, attack="gaussian"))
        assert result.metadata["n_byzantine"] == 0
        assert np.isfinite(result.final_accuracy)

"""Tests for the command-line interface (python -m repro)."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


FAST_ARGUMENTS = [
    "--dataset", "usps_like", "--byzantine", "0.5", "--epochs", "1", "--seed", "1",
]


class TestParser:
    def test_list_command(self):
        arguments = build_parser().parse_args(["list"])
        assert arguments.command == "list"

    def test_run_defaults(self):
        arguments = build_parser().parse_args(["run"])
        assert arguments.dataset == "mnist_like"
        assert arguments.defense == "two_stage"
        assert arguments.byzantine == pytest.approx(0.6)
        assert not arguments.no_dp

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--dataset", "imagenet"])

    def test_rejects_unknown_defense(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--defense", "blockchain"])

    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list_prints_registries(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for expected in ("mnist_like", "label_flip", "two_stage", "mlp_small"):
            assert expected in output

    def test_run_prints_accuracy(self, capsys):
        code = main(["run", *FAST_ARGUMENTS, "--attack", "gaussian"])
        assert code == 0
        output = capsys.readouterr().out
        assert "final test accuracy" in output
        assert "noise multiplier sigma" in output

    def test_run_no_dp(self, capsys):
        code = main(["run", *FAST_ARGUMENTS, "--attack", "gaussian", "--no-dp"])
        assert code == 0
        assert "non-private" in capsys.readouterr().out

    def test_run_saves_results(self, tmp_path, capsys):
        path = tmp_path / "out.json"
        code = main(["run", *FAST_ARGUMENTS, "--attack", "gaussian", "--save", str(path)])
        assert code == 0
        payload = json.loads(path.read_text())
        assert "run" in payload

    def test_compare_prints_three_rows(self, capsys):
        code = main(["compare", *FAST_ARGUMENTS, "--attack", "gaussian"])
        assert code == 0
        output = capsys.readouterr().out
        assert "Reference Accuracy" in output
        assert "undefended mean" in output
        assert "two_stage under gaussian" in output

    def test_compare_saves_three_results(self, tmp_path, capsys):
        path = tmp_path / "compare.json"
        code = main([
            "compare", *FAST_ARGUMENTS, "--attack", "gaussian", "--save", str(path)
        ])
        assert code == 0
        payload = json.loads(path.read_text())
        assert set(payload) == {"reference", "undefended", "protected"}

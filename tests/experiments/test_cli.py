"""Tests for the command-line interface (python -m repro)."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


FAST_ARGUMENTS = [
    "--dataset", "usps_like", "--byzantine", "0.5", "--epochs", "1", "--seed", "1",
]


class TestParser:
    def test_list_command(self):
        arguments = build_parser().parse_args(["list"])
        assert arguments.command == "list"

    def test_run_defaults(self):
        arguments = build_parser().parse_args(["run"])
        assert arguments.dataset == "mnist_like"
        assert arguments.defense == "two_stage"
        assert arguments.byzantine == pytest.approx(0.6)
        assert not arguments.no_dp

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--dataset", "imagenet"])

    def test_rejects_unknown_defense(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--defense", "blockchain"])

    def test_rejects_unknown_attack(self, capsys):
        # A bad --attack must exit at the parser, not deep inside the run.
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["run", "--attack", "quantum"])
        assert excinfo.value.code == 2
        assert "--attack" in capsys.readouterr().err

    def test_accepts_adaptive_attacks(self):
        arguments = build_parser().parse_args(["run", "--attack", "adaptive_lmp"])
        assert arguments.attack == "adaptive_lmp"

    def test_accepts_defense_aliases(self):
        # Registry aliases are valid everywhere, including the CLI flag.
        arguments = build_parser().parse_args(["run", "--defense", "geometric_median"])
        assert arguments.defense == "geometric_median"

    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_backend_defaults_and_jobs(self):
        arguments = build_parser().parse_args(["run"])
        assert arguments.backend == "serial"
        assert arguments.jobs is None
        arguments = build_parser().parse_args(
            ["run", "--backend", "threaded", "--jobs", "4"]
        )
        assert arguments.backend == "threaded"
        assert arguments.jobs == 4

    def test_accepts_backend_aliases(self):
        arguments = build_parser().parse_args(["run", "--backend", "threads"])
        assert arguments.backend == "threads"

    def test_rejects_unknown_backend(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["run", "--backend", "gpu"])
        assert excinfo.value.code == 2
        assert "--backend" in capsys.readouterr().err

    def test_faults_defaults_and_choices(self):
        arguments = build_parser().parse_args(["run"])
        assert arguments.faults == "none"
        assert arguments.min_quorum == 1
        arguments = build_parser().parse_args(
            ["run", "--faults", "dropout", "--min-quorum", "0.5"]
        )
        assert arguments.faults == "dropout"
        assert arguments.min_quorum == pytest.approx(0.5)
        assert isinstance(arguments.min_quorum, float)

    def test_min_quorum_integer_stays_integer(self):
        arguments = build_parser().parse_args(["run", "--min-quorum", "3"])
        assert arguments.min_quorum == 3
        assert isinstance(arguments.min_quorum, int)

    def test_accepts_fault_aliases(self):
        arguments = build_parser().parse_args(["run", "--faults", "dropout_crash"])
        assert arguments.faults == "dropout_crash"

    def test_rejects_unknown_fault_model(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["run", "--faults", "meteor"])
        assert excinfo.value.code == 2
        assert "--faults" in capsys.readouterr().err


class TestServiceParser:
    def test_serve_defaults(self):
        arguments = build_parser().parse_args(["serve"])
        assert arguments.command == "serve"
        assert arguments.host == "127.0.0.1"
        assert arguments.port == 7733
        assert arguments.workers == 1
        assert arguments.heartbeat_interval == pytest.approx(0.5)
        assert arguments.heartbeat_timeout == pytest.approx(10.0)
        assert arguments.transport_retries == 3
        assert arguments.worker_timeout == pytest.approx(60.0)
        assert arguments.state_dir is None
        assert arguments.metrics_out is None
        assert not arguments.metrics_fsync

    def test_serve_accepts_experiment_flags(self):
        arguments = build_parser().parse_args([
            "serve", "--dataset", "usps_like", "--workers", "4",
            "--state-dir", "/tmp/state", "--port", "0",
        ])
        assert arguments.dataset == "usps_like"
        assert arguments.workers == 4
        assert arguments.state_dir == "/tmp/state"
        assert arguments.port == 0

    def test_worker_defaults(self):
        arguments = build_parser().parse_args(["worker"])
        assert arguments.command == "worker"
        assert arguments.host == "127.0.0.1"
        assert arguments.port == 7733
        assert arguments.name is None
        assert arguments.reconnect_timeout == pytest.approx(30.0)
        assert arguments.throttle == pytest.approx(0.0)
        assert not arguments.verbose

    def test_metrics_fsync_flag_on_run_and_serve(self):
        assert build_parser().parse_args(
            ["run", "--metrics-fsync"]
        ).metrics_fsync
        assert build_parser().parse_args(
            ["serve", "--metrics-fsync"]
        ).metrics_fsync


class TestOperationalExitCodes:
    def test_quorum_violation_exits_2_with_one_line_message(self, capsys):
        # Full-population quorum under injected dropout: some round loses
        # a worker, and the CLI must report it, not traceback.
        code = main([
            "run", *FAST_ARGUMENTS, "--attack", "gaussian",
            "--faults", "chaos", "--min-quorum", "1.0",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: ")
        assert len(err.strip().splitlines()) == 1

    def test_broken_stdout_pipe_exits_quietly(self, monkeypatch, capsys):
        # BrokenPipeError subclasses ConnectionError, but ``repro list |
        # head`` closing our stdout is not a federation transport failure:
        # conventional 128+SIGPIPE exit, nothing on stderr.
        def explode(arguments):
            raise BrokenPipeError

        monkeypatch.setattr("repro.cli._command_list", explode)
        assert main(["list"]) == 141
        assert capsys.readouterr().err == ""

    def test_connection_failure_exits_3_with_one_line_message(self, capsys):
        # A coordinator whose workers never show up aborts with the
        # connection exit code a supervisor restarts on.
        code = main([
            "serve", *FAST_ARGUMENTS, "--attack", "gaussian",
            "--port", "0", "--worker-timeout", "0.2",
        ])
        assert code == 3
        err = capsys.readouterr().err
        assert err.startswith("repro: connection error: ")
        assert len(err.strip().splitlines()) == 1


class TestCommands:
    def test_list_prints_registries(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for expected in ("mnist_like", "label_flip", "two_stage", "mlp_small"):
            assert expected in output

    def test_list_json_emits_describe_rows(self, capsys):
        assert main(["list", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        kinds = {row["kind"] for row in rows}
        assert kinds == {
            "dataset", "attack", "defense", "model", "engine", "backend",
            "fault", "sampler",
        }
        by_name = {row["name"]: row for row in rows}
        assert by_name["two_stage"]["summary"]

    def test_run_with_faults_and_metrics_out(self, tmp_path, capsys):
        metrics = tmp_path / "rounds.jsonl"
        assert main([
            "run", *FAST_ARGUMENTS, "--attack", "gaussian",
            "--faults", "dropout", "--min-quorum", "0.25",
            "--metrics-out", str(metrics),
        ]) == 0
        output = capsys.readouterr().out
        assert "final test accuracy" in output
        assert f"per-round metrics written to {metrics}" in output
        records = [
            json.loads(line) for line in metrics.read_text().strip().splitlines()
        ]
        assert records
        assert all("fault_survivors" in record for record in records)

    def test_run_from_config_file(self, tmp_path, capsys):
        from repro.experiments.presets import benchmark_preset

        config = benchmark_preset(
            dataset="usps_like", byzantine_fraction=0.5, attack="gaussian",
            epochs=1, scale=0.2, n_honest=4,
        )
        path = tmp_path / "experiment.json"
        path.write_text(config.to_json())
        assert main(["run", "--config", str(path)]) == 0
        output = capsys.readouterr().out
        assert "usps_like" in output
        assert "gaussian / two_stage" in output

    def test_config_file_with_unknown_key_exits_cleanly(self, tmp_path):
        path = tmp_path / "experiment.json"
        path.write_text(json.dumps({"dataset": "usps_like", "atack": "lmp"}))
        with pytest.raises(SystemExit, match="atack"):
            main(["run", "--config", str(path)])

    def test_missing_config_file_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read"):
            main(["run", "--config", str(tmp_path / "nope.json")])

    def test_malformed_config_json_exits_cleanly(self, tmp_path):
        path = tmp_path / "experiment.json"
        path.write_text("{not json")
        with pytest.raises(SystemExit, match="invalid --config"):
            main(["run", "--config", str(path)])

    def test_run_prints_accuracy(self, capsys):
        code = main(["run", *FAST_ARGUMENTS, "--attack", "gaussian"])
        assert code == 0
        output = capsys.readouterr().out
        assert "final test accuracy" in output
        assert "noise multiplier sigma" in output

    def test_run_output_byte_identical_across_backends(self, capsys):
        """The acceptance gate: backend choice is invisible in the output."""
        assert main(["run", *FAST_ARGUMENTS, "--backend", "serial"]) == 0
        serial_output = capsys.readouterr().out
        assert main(
            ["run", *FAST_ARGUMENTS, "--backend", "threaded", "--jobs", "2"]
        ) == 0
        assert capsys.readouterr().out == serial_output

    def test_run_no_dp(self, capsys):
        code = main(["run", *FAST_ARGUMENTS, "--attack", "gaussian", "--no-dp"])
        assert code == 0
        assert "non-private" in capsys.readouterr().out

    def test_run_saves_results(self, tmp_path, capsys):
        path = tmp_path / "out.json"
        code = main(["run", *FAST_ARGUMENTS, "--attack", "gaussian", "--save", str(path)])
        assert code == 0
        payload = json.loads(path.read_text())
        assert "run" in payload

    def test_compare_prints_three_rows(self, capsys):
        code = main(["compare", *FAST_ARGUMENTS, "--attack", "gaussian"])
        assert code == 0
        output = capsys.readouterr().out
        assert "Reference Accuracy" in output
        assert "undefended mean" in output
        assert "two_stage under gaussian" in output

    def test_compare_saves_three_results(self, tmp_path, capsys):
        path = tmp_path / "compare.json"
        code = main([
            "compare", *FAST_ARGUMENTS, "--attack", "gaussian", "--save", str(path)
        ])
        assert code == 0
        payload = json.loads(path.read_text())
        assert set(payload) == {"reference", "undefended", "protected"}

"""Tests for the benchmark regression gate (benchmarks/check_regression.py).

The gate is demonstrated here -- a synthetic >1.5x slowdown must fail,
a small one must only warn -- so CI proves the policy without anyone
having to break a real benchmark.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

SCRIPT = Path(__file__).parent.parent / "benchmarks" / "check_regression.py"

spec = importlib.util.spec_from_file_location("check_regression", SCRIPT)
check_regression = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_regression)


def write_export(path: Path, times: dict[str, float]) -> Path:
    """A minimal pytest-benchmark JSON export with the given min times."""
    payload = {
        "benchmarks": [
            {"fullname": name, "stats": {"min": seconds}}
            for name, seconds in times.items()
        ]
    }
    path.write_text(json.dumps(payload))
    return path


@pytest.fixture
def gate(tmp_path):
    """Run the gate CLI against a tmp baseline dir; returns (run, dirs)."""
    baseline_dir = tmp_path / "baselines"

    def run(*argv: str) -> int:
        return check_regression.main([*argv, "--baseline-dir", str(baseline_dir)])

    return run, tmp_path, baseline_dir


class TestUpdate:
    def test_update_records_min_times(self, gate):
        run, tmp_path, baseline_dir = gate
        export = write_export(
            tmp_path / "BENCH_demo.json", {"bench_a": 0.001, "bench_b": 0.002}
        )
        assert run(str(export), "--update") == 0
        recorded = json.loads((baseline_dir / "BENCH_demo.json").read_text())
        assert recorded["benchmarks"] == {"bench_a": 0.001, "bench_b": 0.002}
        assert recorded["source"] == "BENCH_demo.json"


class TestGate:
    def baseline(self, gate, times):
        run, tmp_path, _ = gate
        export = write_export(tmp_path / "BENCH_demo.json", times)
        assert run(str(export), "--update") == 0

    def test_unchanged_times_pass(self, gate):
        run, tmp_path, _ = gate
        self.baseline(gate, {"bench_a": 0.001})
        assert run(str(tmp_path / "BENCH_demo.json")) == 0

    def test_regression_beyond_fail_tolerance_fails(self, gate, capsys):
        run, tmp_path, _ = gate
        self.baseline(gate, {"bench_a": 0.001, "bench_b": 0.002})
        write_export(
            tmp_path / "BENCH_demo.json", {"bench_a": 0.0016, "bench_b": 0.002}
        )
        assert run(str(tmp_path / "BENCH_demo.json")) == 1
        output = capsys.readouterr().out
        assert "FAIL" in output and "bench_a" in output

    def test_slowdown_within_fail_tolerance_warns(self, gate, capsys):
        run, tmp_path, _ = gate
        self.baseline(gate, {"bench_a": 0.001})
        write_export(tmp_path / "BENCH_demo.json", {"bench_a": 0.0013})
        assert run(str(tmp_path / "BENCH_demo.json")) == 0
        assert "WARN" in capsys.readouterr().out

    def test_improvement_never_fails(self, gate, capsys):
        run, tmp_path, _ = gate
        self.baseline(gate, {"bench_a": 0.001})
        write_export(tmp_path / "BENCH_demo.json", {"bench_a": 0.0001})
        assert run(str(tmp_path / "BENCH_demo.json")) == 0
        assert "refreshing the baseline" in capsys.readouterr().out

    def test_custom_tolerances(self, gate):
        run, tmp_path, _ = gate
        self.baseline(gate, {"bench_a": 0.001})
        write_export(tmp_path / "BENCH_demo.json", {"bench_a": 0.0013})
        assert run(str(tmp_path / "BENCH_demo.json"), "--fail-at", "1.25") == 1

    def test_new_benchmark_warns_but_passes(self, gate, capsys):
        run, tmp_path, _ = gate
        self.baseline(gate, {"bench_a": 0.001})
        write_export(
            tmp_path / "BENCH_demo.json", {"bench_a": 0.001, "bench_new": 0.005}
        )
        assert run(str(tmp_path / "BENCH_demo.json")) == 0
        assert "not in baseline" in capsys.readouterr().out

    def test_missing_baseline_warns_but_passes(self, gate, capsys):
        run, tmp_path, _ = gate
        export = write_export(tmp_path / "BENCH_other.json", {"bench_a": 0.001})
        assert run(str(export)) == 0
        assert "no baseline" in capsys.readouterr().out

    def test_baseline_only_entries_ignored(self, gate):
        """Partial re-runs stay usable: extra baseline entries don't fail."""
        run, tmp_path, _ = gate
        self.baseline(gate, {"bench_a": 0.001, "bench_gone": 0.002})
        write_export(tmp_path / "BENCH_demo.json", {"bench_a": 0.001})
        assert run(str(tmp_path / "BENCH_demo.json")) == 0

    def test_rejects_non_benchmark_json(self, gate):
        run, tmp_path, _ = gate
        self.baseline(gate, {"bench_a": 0.001})
        bogus = tmp_path / "BENCH_demo.json"
        bogus.write_text(json.dumps({"not": "an export"}))
        with pytest.raises(SystemExit):
            run(str(bogus))


class TestCommittedBaselines:
    def test_every_committed_baseline_is_well_formed(self):
        """The baselines shipped in-repo parse and carry positive times."""
        baseline_dir = SCRIPT.parent / "baselines"
        paths = sorted(baseline_dir.glob("*.json"))
        assert paths, "no committed baselines found"
        for path in paths:
            recorded = check_regression.load_baseline(path)
            assert recorded, f"{path} holds no benchmarks"
            assert all(seconds > 0 for seconds in recorded.values())

"""Shared fixtures for the test suite.

The fixtures deliberately use tiny models and datasets so that the whole
suite (several hundred tests, including a handful of end-to-end federated
runs) completes in a few minutes on a laptop CPU.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DPConfig, ProtocolConfig
from repro.data.dataset import Dataset
from repro.data.synthetic import make_classification
from repro.nn.layers import ELU, Linear
from repro.nn.network import Sequential


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_dataset(rng: np.random.Generator) -> Dataset:
    """A small, easy 3-class dataset (120 examples, 8 features)."""
    return make_classification(
        n_samples=120,
        n_features=8,
        n_classes=3,
        class_separation=4.0,
        within_class_std=0.6,
        nonlinear=False,
        rng=rng,
        name="small",
    )


@pytest.fixture
def tiny_dataset(rng: np.random.Generator) -> Dataset:
    """A minimal 2-class dataset (40 examples, 4 features)."""
    return make_classification(
        n_samples=40,
        n_features=4,
        n_classes=2,
        class_separation=4.0,
        within_class_std=0.5,
        nonlinear=False,
        rng=rng,
        name="tiny",
    )


@pytest.fixture
def small_model(rng: np.random.Generator) -> Sequential:
    """A small MLP matching ``small_dataset`` (8 -> 6 -> 3)."""
    return Sequential([Linear(8, 6, rng), ELU(), Linear(6, 3, rng)])


@pytest.fixture
def tiny_model(rng: np.random.Generator) -> Sequential:
    """A linear model matching ``tiny_dataset`` (4 -> 2)."""
    return Sequential([Linear(4, 2, rng)])


@pytest.fixture
def dp_config() -> DPConfig:
    """Default client-side DP configuration used in protocol tests."""
    return DPConfig(batch_size=8, sigma=1.0, momentum=0.1, bounding="normalize")


@pytest.fixture
def protocol_config() -> ProtocolConfig:
    """Default server-side protocol configuration."""
    return ProtocolConfig(gamma=0.5)


def numerical_gradient(model: Sequential, x: np.ndarray, y: np.ndarray, step: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of the mean loss (for gradient checks)."""
    base = model.get_flat_parameters()
    gradient = np.zeros_like(base)
    for index in range(base.size):
        perturbed = base.copy()
        perturbed[index] += step
        model.set_flat_parameters(perturbed)
        loss_plus = model.loss(x, y)
        perturbed[index] -= 2.0 * step
        model.set_flat_parameters(perturbed)
        loss_minus = model.loss(x, y)
        gradient[index] = (loss_plus - loss_minus) / (2.0 * step)
    model.set_flat_parameters(base)
    return gradient
